(* The daemon: accept loop + one systhread per connection + a dedicated
   domain pool for compute.

   Threads do the blocking I/O (systhreads share one domain, so they
   cost nothing while parked in [read]/[accept]); every Run/Eval/Sleep
   request is handed to the domain pool through {!Analysis.Domain_pool}
   [submit] and the connection thread parks on a condition variable
   until its result cell fills. Admission is a plain atomic counter
   against [max_queue]: a request over the bound is answered [Busy] with
   a retry hint and never enqueued, so the queue — and the daemon's
   memory — stays bounded no matter how many clients pile on.

   Connection lifecycle discipline (what the chaos harness enforces):
   every accepted connection is registered with an idle/busy flag and a
   last-activity clock, reads are bounded by [conn_timeout_s] (a silent
   peer can never park a thread forever), the connection population is
   bounded by [max_conns] with oldest-idle eviction, a vanished peer
   costs exactly its own connection (SIGPIPE is ignored; EPIPE is a
   counted per-connection loss), and graceful shutdown closes idle
   connections instead of waiting on them. *)

module Dp = Analysis.Domain_pool

(* One registered connection. [c_busy]/[c_last] are written by the
   owning thread and read under [reg_lock] by the evictor and the drain
   sweep; [c_gone] flags a connection whose fd has been shut down (by
   eviction or drain) so nobody shuts it down twice. *)
type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  mutable c_busy : bool;
  mutable c_last : float;  (* Monoclock of last activity *)
  mutable c_gone : bool;
}

type t = {
  session : Session.t;
  pool : Dp.t;
  workers : int;
  max_queue : int;
  inflight : int Atomic.t;
  conn_timeout_s : float option;
  max_conns : int;  (* 0 = unbounded *)
  chaos : Chaos.t;
  io_faults : Protocol.faults option;
  listen_fd : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  (* Self-pipe: [shutdown] writes one byte so the [select] parked before
     [accept] wakes even with no client connecting. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  (* Connection threads still running, joined at drain time. *)
  conns : int Atomic.t;
  registry : (int, conn) Hashtbl.t;
  reg_lock : Mutex.t;
  next_conn_id : int Atomic.t;
  conn_timeouts : int Atomic.t;
  conn_evicted : int Atomic.t;
  conn_rejected : int Atomic.t;
  conn_lost : int Atomic.t;
}

let sockaddr t = t.sockaddr
let session t = t.session
let chaos t = t.chaos

let unlink_if_unix = function
  | Unix.ADDR_UNIX path when path <> "" -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()

let create ?config ?(max_queue = 16) ?workers ?conn_timeout_s
    ?(max_conns = 0) ?chaos ?checkpoints ?idem_cap sockaddr =
  let chaos =
    match chaos with
    | Some c -> c
    | None -> (
      match Option.bind config (fun c -> c.Core.Config.chaos) with
      | None -> Chaos.none
      | Some spec -> (
        match Chaos.parse spec with
        | Ok c -> c
        | Error e -> invalid_arg e))
  in
  let listen_fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  unlink_if_unix sockaddr;
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd 64;
  let pool = Dp.create ?size:workers () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  if Chaos.is_active chaos then Chaos.install_persist chaos;
  {
    session = Session.create ?config ?checkpoints ?idem_cap ();
    pool;
    workers = Dp.size pool;
    max_queue = max 1 max_queue;
    inflight = Atomic.make 0;
    conn_timeout_s;
    max_conns = max 0 max_conns;
    chaos;
    io_faults = Chaos.io_faults chaos;
    listen_fd;
    (* The address actually bound — port 0 requests resolve here, so
       tests can listen on an ephemeral port. *)
    sockaddr = Unix.getsockname listen_fd;
    wake_r;
    wake_w;
    stopping = Atomic.make false;
    conns = Atomic.make 0;
    registry = Hashtbl.create 64;
    reg_lock = Mutex.create ();
    next_conn_id = Atomic.make 0;
    conn_timeouts = Atomic.make 0;
    conn_evicted = Atomic.make 0;
    conn_rejected = Atomic.make 0;
    conn_lost = Atomic.make 0;
  }

let shutdown t =
  if not (Atomic.exchange t.stopping true) then
    (* A failed write only means shutdown raced a previous one. *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Connection registry                                                 *)
(* ------------------------------------------------------------------ *)

let register t fd =
  let c =
    {
      c_id = Atomic.fetch_and_add t.next_conn_id 1;
      c_fd = fd;
      c_busy = false;
      c_last = Core.Monoclock.now ();
      c_gone = false;
    }
  in
  Mutex.lock t.reg_lock;
  Hashtbl.replace t.registry c.c_id c;
  Mutex.unlock t.reg_lock;
  c

let unregister t c =
  Mutex.lock t.reg_lock;
  Hashtbl.remove t.registry c.c_id;
  Mutex.unlock t.reg_lock

(* Wake a parked reader with EOF without invalidating its fd (the owner
   thread still owns the [close]): [shutdown] on the socket unblocks a
   blocked [read]/[select] immediately, no signal needed. Caller holds
   [reg_lock]. *)
let nudge c =
  if not c.c_gone then begin
    c.c_gone <- true;
    try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

(* At the connection cap: shut down the longest-idle connection to make
   room. A connection mid-request is never a victim — its exchange is
   about to finish and closing it would break the one-response-per-
   request contract. *)
let evict_oldest_idle t =
  Mutex.lock t.reg_lock;
  let victim =
    Hashtbl.fold
      (fun _ c acc ->
        if c.c_busy || c.c_gone then acc
        else
          match acc with
          | Some v when v.c_last <= c.c_last -> acc
          | _ -> Some c)
      t.registry None
  in
  (match victim with
  | Some c ->
    nudge c;
    Atomic.incr t.conn_evicted
  | None -> ());
  Mutex.unlock t.reg_lock;
  victim <> None

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

(* Hand the request to the pool and park until the result cell fills.
   [Session.execute] never raises, so the cell always fills — but the
   job also runs under the pool's exception shield, so even a bug there
   (or an injected [job_crash]) could only lose this one response, never
   a worker domain. *)
let dispatch t ~deadline request =
  let cell = ref None in
  let lock = Mutex.create () in
  let filled = Condition.create () in
  Dp.submit t.pool (fun () ->
      let resp =
        try
          if Chaos.job_crashes t.chaos then
            raise (Chaos.Injected "job_crash");
          Session.execute t.session ~deadline request
        with e ->
          Protocol.Failed { code = "crashed"; detail = Printexc.to_string e }
      in
      Mutex.lock lock;
      cell := Some resp;
      Condition.signal filled;
      Mutex.unlock lock);
  Mutex.lock lock;
  while !cell = None do
    Condition.wait filled lock
  done;
  Mutex.unlock lock;
  Option.get !cell

let stats_response t =
  let num n = Protocol.Json.Num (float_of_int n) in
  let extra =
    [
      ("connections",
       Protocol.Json.Obj
         [
           ("open", num (Atomic.get t.conns));
           ("max_conns", num t.max_conns);
           ("timeouts", num (Atomic.get t.conn_timeouts));
           ("evicted", num (Atomic.get t.conn_evicted));
           ("rejected", num (Atomic.get t.conn_rejected));
           ("lost", num (Atomic.get t.conn_lost));
         ]);
    ]
    @
    if Chaos.is_active t.chaos then
      [ ("chaos", Chaos.stats_json t.chaos) ]
    else []
  in
  Protocol.Completed
    {
      op = "stats";
      body =
        Session.stats_body t.session
          ~queue_depth:(Atomic.get t.inflight)
          ~max_queue:t.max_queue ~workers:t.workers
          ~pool_failed:(Dp.failed_jobs t.pool)
          ~extra ();
    }

(* Queue-wait is part of the request's budget, so the deadline is fixed
   at admission, not at execution start. *)
let admit t ~timeout_s request =
  let n = Atomic.fetch_and_add t.inflight 1 in
  if n >= t.max_queue then begin
    Atomic.decr t.inflight;
    Session.note_busy t.session;
    (* Hint scales with the backlog: with [w] workers each busy slot is
       roughly one request of service time ahead of the caller. *)
    let backlog = float_of_int (n + 1 - t.max_queue + 1) in
    Protocol.Busy
      { retry_after_s = Float.max 0.1 (backlog /. float_of_int (max 1 t.workers)) }
  end
  else begin
    let deadline =
      Option.map (fun s -> Core.Monoclock.now () +. s) timeout_s
    in
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () -> dispatch t ~deadline request)
  end

(* ------------------------------------------------------------------ *)
(* The response write (where chaos corrupts frames)                    *)
(* ------------------------------------------------------------------ *)

(* Returns whether the connection survives the write. Injected
   corruption always ends the connection — the failure being simulated
   is a daemon that wrote garbage and died, and a response frame the
   peer cannot trust poisons every later exchange on the stream. *)
let respond t c response =
  let write json = Protocol.write_frame ?faults:t.io_faults c.c_fd json in
  let write_raw b =
    try Protocol.really_write c.c_fd b
    with Unix.Unix_error _ -> ()
  in
  let hdr n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    b
  in
  match Chaos.plan_response t.chaos with
  | Chaos.Deliver ->
    write (Protocol.encode_response response);
    true
  | Chaos.Drop_before -> false
  | Chaos.Drop_after ->
    (try write (Protocol.encode_response response)
     with Unix.Unix_error _ -> ());
    false
  | Chaos.Garbage ->
    (* Well-framed, unparseable payload. *)
    let junk = Bytes.of_string "\xff\xfe{{ not json" in
    write_raw (hdr (Bytes.length junk));
    write_raw junk;
    false
  | Chaos.Truncate ->
    (* Header promising a payload that never fully arrives. *)
    let payload =
      Bytes.of_string
        (Protocol.Json.to_compact_string (Protocol.encode_response response))
    in
    let n = Bytes.length payload in
    write_raw (hdr n);
    write_raw (Bytes.sub payload 0 (n / 2));
    false
  | Chaos.Oversize ->
    write_raw (hdr (Protocol.max_frame + 1));
    false

let handle_request t c request =
  match request with
  | Protocol.Ping ->
    respond t c
      (Protocol.Completed { op = "ping"; body = Protocol.Json.Null })
  | Protocol.Stats -> respond t c (stats_response t)
  | Protocol.Shutdown ->
    let _alive =
      respond t c
        (Protocol.Completed { op = "shutdown"; body = Protocol.Json.Null })
    in
    shutdown t;
    false
  | Protocol.Run { timeout_s; _ }
  | Protocol.Eval { timeout_s; _ }
  | Protocol.Sleep { timeout_s; _ } ->
    respond t c (admit t ~timeout_s request)

let handle_conn t fd =
  let c = register t fd in
  let rec loop () =
    match
      Protocol.read_frame ?timeout_s:t.conn_timeout_s ?faults:t.io_faults fd
    with
    | None -> ()
    | Some json ->
      c.c_last <- Core.Monoclock.now ();
      let keep_going =
        match Protocol.decode_request json with
        | Ok request ->
          c.c_busy <- true;
          Fun.protect
            ~finally:(fun () ->
              c.c_busy <- false;
              c.c_last <- Core.Monoclock.now ())
            (fun () -> handle_request t c request)
        | Error detail ->
          respond t c (Protocol.Failed { code = "bad_request"; detail })
      in
      if keep_going then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* Decrement before unregistering: a connection that has left the
         count but not yet the registry only risks a harmless transient
         over the cap, whereas the reverse order makes a full daemon
         reject newcomers for a connection that is already gone. *)
      Atomic.decr t.conns;
      unregister t c;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* A peer that vanishes mid-frame, writes garbage, stalls past the
         connection deadline or triggers EPIPE only loses its own
         connection — each outcome is counted. *)
      try loop () with
      | Protocol.Framing_error _ -> Atomic.incr t.conn_lost
      | Protocol.Timeout -> Atomic.incr t.conn_timeouts
      | Unix.Unix_error _ -> Atomic.incr t.conn_lost)

let serve t =
  (* A peer that disconnects before its response is written must cost a
     write error on its own connection, not a process-fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.) with
      | readable, _, _ ->
        if List.memq t.listen_fd readable && not (Atomic.get t.stopping) then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
            let admit_conn =
              t.max_conns = 0
              || Atomic.get t.conns < t.max_conns
              || evict_oldest_idle t
              (* The evicted thread needs a moment to exit, so the
                 population may transiently run one over the cap. *)
            in
            if admit_conn then begin
              Atomic.incr t.conns;
              ignore (Thread.create (fun () -> handle_conn t fd) ())
            end
            else begin
              (* Every connection is mid-request: tell the peer we are
                 full instead of parking one more thread. *)
              Atomic.incr t.conn_rejected;
              (try
                 Protocol.write_frame fd
                   (Protocol.encode_response
                      (Protocol.Busy { retry_after_s = 1.0 }))
               with Protocol.Framing_error _ | Unix.Unix_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
          | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
            -> ()
          | exception Unix.Unix_error _ ->
            (* Most likely EMFILE/ENFILE under a connection storm: the
               listener must outlive fd exhaustion, and the pause keeps a
               persistent error from turning into a hot spin. *)
            Unix.sleepf 0.05
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: close idle connections instead of waiting on them (a parked
     client must not wedge shutdown), let in-flight exchanges finish
     (each bounded by its own deadline), then the pool joins. The sweep
     repeats so a connection that finishes its request after one pass is
     closed by the next. *)
  while Atomic.get t.conns > 0 || Atomic.get t.inflight > 0 do
    Mutex.lock t.reg_lock;
    Hashtbl.iter (fun _ c -> if not c.c_busy then nudge c) t.registry;
    Mutex.unlock t.reg_lock;
    Thread.yield ();
    Unix.sleepf 0.002
  done;
  Dp.shutdown t.pool;
  if Chaos.is_active t.chaos then Chaos.uninstall_persist ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  unlink_if_unix t.sockaddr
