(* The daemon: accept loop + one systhread per connection + a dedicated
   domain pool for compute.

   Threads do the blocking I/O (systhreads share one domain, so they
   cost nothing while parked in [read]/[accept]); every Run/Eval/Sleep
   request is handed to the domain pool through {!Analysis.Domain_pool}
   [submit] and the connection thread parks on a condition variable
   until its result cell fills. Admission is a plain atomic counter
   against [max_queue]: a request over the bound is answered [Busy] with
   a retry hint and never enqueued, so the queue — and the daemon's
   memory — stays bounded no matter how many clients pile on. *)

module Dp = Analysis.Domain_pool

type t = {
  session : Session.t;
  pool : Dp.t;
  workers : int;
  max_queue : int;
  inflight : int Atomic.t;
  listen_fd : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  (* Self-pipe: [shutdown] writes one byte so the [select] parked before
     [accept] wakes even with no client connecting. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  (* Connection threads still running, joined at drain time. *)
  conns : int Atomic.t;
}

let sockaddr t = t.sockaddr
let session t = t.session

let unlink_if_unix = function
  | Unix.ADDR_UNIX path when path <> "" -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()

let create ?config ?(max_queue = 16) ?workers sockaddr =
  let listen_fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  unlink_if_unix sockaddr;
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd 64;
  let pool = Dp.create ?size:workers () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  {
    session = Session.create ?config ();
    pool;
    workers = Dp.size pool;
    max_queue = max 1 max_queue;
    inflight = Atomic.make 0;
    listen_fd;
    (* The address actually bound — port 0 requests resolve here, so
       tests can listen on an ephemeral port. *)
    sockaddr = Unix.getsockname listen_fd;
    wake_r;
    wake_w;
    stopping = Atomic.make false;
    conns = Atomic.make 0;
  }

let shutdown t =
  if not (Atomic.exchange t.stopping true) then
    (* A failed write only means shutdown raced a previous one. *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()

(* Hand the request to the pool and park until the result cell fills.
   [Session.execute] never raises, so the cell always fills — but the
   job also runs under the pool's exception shield, so even a bug there
   could only lose this one response, never a worker domain. *)
let dispatch t ~deadline request =
  let cell = ref None in
  let lock = Mutex.create () in
  let filled = Condition.create () in
  Dp.submit t.pool (fun () ->
      let resp =
        try Session.execute t.session ~deadline request
        with e ->
          Protocol.Failed { code = "crashed"; detail = Printexc.to_string e }
      in
      Mutex.lock lock;
      cell := Some resp;
      Condition.signal filled;
      Mutex.unlock lock);
  Mutex.lock lock;
  while !cell = None do
    Condition.wait filled lock
  done;
  Mutex.unlock lock;
  Option.get !cell

let stats_response t =
  Protocol.Completed
    {
      op = "stats";
      body =
        Session.stats_body t.session
          ~queue_depth:(Atomic.get t.inflight)
          ~max_queue:t.max_queue ~workers:t.workers
          ~pool_failed:(Dp.failed_jobs t.pool);
    }

(* Queue-wait is part of the request's budget, so the deadline is fixed
   at admission, not at execution start. *)
let admit t ~timeout_s request =
  let n = Atomic.fetch_and_add t.inflight 1 in
  if n >= t.max_queue then begin
    Atomic.decr t.inflight;
    Session.note_busy t.session;
    (* Hint scales with the backlog: with [w] workers each busy slot is
       roughly one request of service time ahead of the caller. *)
    let backlog = float_of_int (n + 1 - t.max_queue + 1) in
    Protocol.Busy
      { retry_after_s = Float.max 0.1 (backlog /. float_of_int (max 1 t.workers)) }
  end
  else begin
    let deadline =
      Option.map (fun s -> Core.Monoclock.now () +. s) timeout_s
    in
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () -> dispatch t ~deadline request)
  end

let respond fd response =
  Protocol.write_frame fd (Protocol.encode_response response)

let handle_request t fd request =
  match request with
  | Protocol.Ping ->
    respond fd (Protocol.Completed { op = "ping"; body = Protocol.Json.Null });
    true
  | Protocol.Stats ->
    respond fd (stats_response t);
    true
  | Protocol.Shutdown ->
    respond fd
      (Protocol.Completed { op = "shutdown"; body = Protocol.Json.Null });
    shutdown t;
    false
  | Protocol.Run { timeout_s; _ }
  | Protocol.Eval { timeout_s; _ }
  | Protocol.Sleep { timeout_s; _ } ->
    respond fd (admit t ~timeout_s request);
    true

let handle_conn t fd =
  let rec loop () =
    match Protocol.read_frame fd with
    | None -> ()
    | Some json ->
      let keep_going =
        match Protocol.decode_request json with
        | Ok request -> handle_request t fd request
        | Error detail ->
          respond fd (Protocol.Failed { code = "bad_request"; detail });
          true
      in
      if keep_going then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr t.conns)
    (fun () ->
      (* A peer that vanishes mid-frame or writes garbage only loses its
         own connection. *)
      try loop () with
      | Protocol.Framing_error _ | Unix.Unix_error _ -> ())

let serve t =
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.) with
      | readable, _, _ ->
        if List.memq t.listen_fd readable && not (Atomic.get t.stopping) then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
            Atomic.incr t.conns;
            ignore (Thread.create (fun () -> handle_conn t fd) ())
          | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
            -> ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: connection threads finish their in-flight request/response
     exchanges (each bounded by its own deadline), then the pool joins. *)
  while Atomic.get t.conns > 0 || Atomic.get t.inflight > 0 do
    Thread.yield ();
    Unix.sleepf 0.002
  done;
  Dp.shutdown t.pool;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  unlink_if_unix t.sockaddr
