(** Seeded, deterministic fault injection for the serve stack.

    A chaos spec is a comma-separated list of [fault=p] or [fault=p\@n]
    assignments: [p] the per-opportunity injection probability, [n] an
    optional lifetime budget ([drop_pre=1\@1] kills exactly the first
    response). Fault classes and their boundaries:

    - [frame_garbage], [frame_truncate], [frame_oversize] — corrupt an
      outgoing response frame ({!Protocol} boundary)
    - [stall] (duration [stall_s]) — park the thread mid-frame
    - [drop_pre], [drop_post] — close the connection before / after the
      response write ({!Server} boundary)
    - [eintr], [short_write] (cap [short_bytes]) — signal storms and
      partial writes inside the frame I/O loops
    - [job_crash] — a dispatched job raises on its worker domain
    - [persist] — disk faults in {!Core.Persist} (failed fsync/rename,
      torn tmp files, cycling)

    Scalar knobs: [seed] (decision stream), [stall_s], [short_bytes].

    Decisions come from a splitmix64 stream over (seed, decision index):
    a fixed seed reproduces the same fault mix statistically, and
    exactly under a serial schedule. Every injection is counted and
    surfaced through the daemon's [stats] op. *)

(** Raised by injected faults that simulate crashes (e.g. [job_crash]);
    the argument names the fault class. *)
exception Injected of string

type t

(** The spec that injects nothing (and costs nothing). *)
val none : t

(** Parse a chaos spec; [Error] explains the first bad assignment. *)
val parse : string -> (t, string) result

(** Whether any fault class has a nonzero probability. *)
val is_active : t -> bool

(** Frame-I/O fault hook for {!Protocol.read_frame}/[write_frame];
    [None] when no I/O-level class is armed. *)
val io_faults : t -> Protocol.faults option

(** Fate of one outgoing response frame. *)
type write_plan =
  | Deliver
  | Drop_before  (** close without writing — the peer sees a clean EOF *)
  | Drop_after   (** write, then close — the exchange lands, the conn dies *)
  | Garbage      (** well-framed unparseable payload *)
  | Truncate     (** header + half the payload, then close — a torn frame *)
  | Oversize     (** header claiming > {!Protocol.max_frame} *)

val plan_response : t -> write_plan

(** Whether this dispatched job should raise {!Injected} on its worker. *)
val job_crashes : t -> bool

(** Install the process-wide {!Core.Persist} fault hook (no-op when the
    [persist] class is off). Consecutive injections cycle through
    fsync / rename / torn-tmp failures. *)
val install_persist : t -> unit

val uninstall_persist : unit -> unit

(** Per-class injection counters, stable order. *)
val injected : t -> (string * int) list

val total_injected : t -> int

(** The counters as a [stats] sub-object (includes the seed). *)
val stats_json : t -> Suite.Report.Json.t
