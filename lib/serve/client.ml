(* Minimal scripted client for the serve protocol: one connection, one
   request/response exchange per call. Used by the [contango client]
   subcommand, the serve tests and the CONTANGO_BENCH_SERVE harness. *)

let connect sockaddr =
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let request fd req =
  Protocol.write_frame fd (Protocol.encode_request req);
  match Protocol.read_frame fd with
  | None -> Error "connection closed before the response arrived"
  | Some json -> Protocol.decode_response json

let with_connection sockaddr f =
  let fd = connect sockaddr in
  Fun.protect ~finally:(fun () -> close fd) (fun () -> f fd)

let oneshot sockaddr req = with_connection sockaddr (fun fd -> request fd req)

(* ------------------------------------------------------------------ *)
(* Idempotent retries                                                  *)
(* ------------------------------------------------------------------ *)

(* Process-unique request keys: pid + wall clock + a counter. Uniqueness
   across retries of *different* requests is all that matters — retries
   of the same request must reuse the same key, which [request_with_retry]
   guarantees by stamping the request once, before the first attempt. *)
let key_counter = Atomic.make 0

let fresh_key () =
  Printf.sprintf "c%d-%.6f-%d" (Unix.getpid ()) (Unix.gettimeofday ())
    (Atomic.fetch_and_add key_counter 1)

(* Deterministic-enough jitter without touching the global Random state:
   a splitmix64-style mix of a private counter. *)
let jitter_counter = Atomic.make 0

let jitter () =
  let x = Int64.of_int (Atomic.fetch_and_add jitter_counter 1) in
  let open Int64 in
  let x = add x 0x9e3779b97f4a7c15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  (* -> [0.5, 1.0): full backoff scale, never collapses to zero *)
  0.5 +. (Int64.to_float (shift_right_logical x 12) /. 4503599627370496. /. 2.)

let retryable_exn = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.EINTR
        | Unix.ETIMEDOUT | Unix.EAGAIN ),
        _,
        _ )
  | Protocol.Framing_error _ ->
    true
  | _ -> false

let request_with_retry ?(retries = 4) ?(backoff_s = 0.05)
    ?(max_backoff_s = 2.) sockaddr req =
  (* Stamp Run/Eval with a request key once, so every wire attempt
     carries the same key and the daemon can answer a retry of an
     already-executed request from its idempotency cache instead of
     recomputing (or double-running) it. *)
  let req =
    match Protocol.request_key req with
    | Some _ -> req
    | None -> Protocol.with_request_key req (fresh_key ())
  in
  let sleep attempt ~hint =
    let exp = backoff_s *. (2. ** float_of_int attempt) *. jitter () in
    let s = Float.min max_backoff_s (Float.max exp (Option.value hint ~default:0.)) in
    if s > 0. then Unix.sleepf s
  in
  let rec go attempt last_err =
    if attempt > retries then
      Error (Printf.sprintf "gave up after %d attempts: %s" (retries + 1) last_err)
    else
      match oneshot sockaddr req with
      | Ok (Protocol.Busy { retry_after_s }) ->
        (* The daemon's own hint takes precedence over our schedule. *)
        sleep attempt ~hint:(Some retry_after_s);
        go (attempt + 1) "daemon busy"
      | Ok (Protocol.Failed { code = "crashed"; detail }) ->
        (* A crashed worker job is transient (and under chaos, injected);
           deadline / bad_request failures are the caller's problem and
           retrying them cannot help. *)
        sleep attempt ~hint:None;
        go (attempt + 1) (Printf.sprintf "worker crashed: %s" detail)
      | Ok _ as ok -> ok
      | Error e ->
        sleep attempt ~hint:None;
        go (attempt + 1) e
      | exception e when retryable_exn e ->
        sleep attempt ~hint:None;
        go (attempt + 1) (Printexc.to_string e)
  in
  go 0 "no attempt made"

(* Retry [connect] until the daemon's socket accepts — for scripts that
   just forked the server. *)
let wait_ready ?(timeout_s = 10.) sockaddr =
  let give_up = Core.Monoclock.now () +. timeout_s in
  let rec go () =
    match with_connection sockaddr (fun fd -> request fd Protocol.Ping) with
    | Ok _ -> true
    | Error _ | (exception Unix.Unix_error _) ->
      if Core.Monoclock.now () > give_up then false
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()
