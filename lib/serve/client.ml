(* Minimal scripted client for the serve protocol: one connection, one
   request/response exchange per call. Used by the [contango client]
   subcommand, the serve tests and the CONTANGO_BENCH_SERVE harness. *)

let connect sockaddr =
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let request fd req =
  Protocol.write_frame fd (Protocol.encode_request req);
  match Protocol.read_frame fd with
  | None -> Error "connection closed before the response arrived"
  | Some json -> Protocol.decode_response json

let with_connection sockaddr f =
  let fd = connect sockaddr in
  Fun.protect ~finally:(fun () -> close fd) (fun () -> f fd)

let oneshot sockaddr req = with_connection sockaddr (fun fd -> request fd req)

(* Retry [connect] until the daemon's socket accepts — for scripts that
   just forked the server. *)
let wait_ready ?(timeout_s = 10.) sockaddr =
  let give_up = Core.Monoclock.now () +. timeout_s in
  let rec go () =
    match with_connection sockaddr (fun fd -> request fd Protocol.Ping) with
    | Ok _ -> true
    | Error _ | (exception Unix.Unix_error _) ->
      if Core.Monoclock.now () > give_up then false
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()
