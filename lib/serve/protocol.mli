(** Wire protocol of the [contango serve] daemon.

    Frames: a 4-byte big-endian payload length followed by that many
    bytes of compact JSON ({!Suite.Report.Json}). Both directions use
    the same framing; one request frame begets exactly one response
    frame, and a connection carries any number of request/response pairs
    sequentially. See doc/EXTENDING.md ("The serve protocol") for the
    field-level schema. *)

module Json = Suite.Report.Json

(** Torn, oversized or unparseable frame. A clean EOF between frames is
    never an error — {!read_frame} returns [None] for it. *)
exception Framing_error of string

(** A framed read outlived its [timeout_s] budget — either the peer sat
    idle past it or stalled mid-frame. The frame is unrecoverable (bytes
    may already be consumed); close the connection. *)
exception Timeout

(** Frame payload cap, bytes (16 MiB). *)
val max_frame : int

(** Injectable I/O faults, consulted by the framing loops before every
    syscall (the chaos harness supplies the decision function):
    [Fault_eintr] simulates a signal landing mid-syscall — the loops
    must retry, not surface a lost connection; [Fault_stall s] parks the
    thread [s] seconds mid-frame — the [timeout_s] deadline must bound
    it; [Fault_short n] caps one write at [n] bytes — the write loop
    must finish the rest. *)
type io_fault =
  | Fault_eintr
  | Fault_stall of float
  | Fault_short of int

type faults = { on_io : [ `Read | `Write ] -> io_fault option }

(** Write all of [buf], retrying [EINTR] and short writes; exposed for
    the framing tests. *)
val really_write : ?faults:faults -> Unix.file_descr -> Bytes.t -> unit

(** Read exactly [n] bytes ([None] on immediate clean EOF), retrying
    [EINTR] and short reads. [deadline] is on the {!Core.Monoclock}
    scale; reads past it raise {!Timeout} (select-based, so a silent
    peer cannot park the thread).
    @raise Framing_error on EOF mid-buffer. *)
val really_read :
  ?deadline:float -> ?faults:faults -> Unix.file_descr -> int ->
  Bytes.t option

val write_frame : ?faults:faults -> Unix.file_descr -> Json.t -> unit

(** [None] on clean EOF at a frame boundary. [timeout_s] bounds the
    whole frame, idle wait included.
    @raise Framing_error on torn/oversized/unparseable frames.
    @raise Timeout once [timeout_s] passes with the frame incomplete. *)
val read_frame :
  ?timeout_s:float -> ?faults:faults -> Unix.file_descr -> Json.t option

type request =
  | Run of { spec : string; timeout_s : float option; request_key : string option }
      (** full-flow synthesis of a benchmark spec (anything
          {!Suite.Runner.load_bench} accepts); [timeout_s] is a
          per-request budget measured from the moment the request is
          accepted — queue wait counts against it. [request_key] is an
          optional client-chosen idempotency key: the daemon remembers
          the completed response under it, so a retry of the same key is
          answered from that cache instead of recomputed — what makes
          blind retries after a lost connection safe *)
  | Eval of { spec : string; timeout_s : float option; request_key : string option }
      (** greedy-CTS baseline construction + evaluation of a spec; same
          [request_key] contract as [Run] *)
  | Sleep of { seconds : float; timeout_s : float option }
      (** diagnostic: occupy one worker slot for [seconds] — gives tests
          and drills a deterministic way to fill the queue *)
  | Stats   (** daemon telemetry; answered inline, never queued *)
  | Ping    (** liveness probe; answered inline *)
  | Shutdown  (** stop accepting, drain in-flight work, exit *)

type response =
  | Completed of { op : string; body : Json.t }
      (** the op-specific payload — e.g. a [run] body carries
          [result.{skew_ps,clr_ps,t_max_ps,buffers,eval_runs,seconds}]
          and [cache.{local_hits,local_misses,store_hits,store_misses}] *)
  | Busy of { retry_after_s : float }
      (** bounded queue full — retry after the hinted delay *)
  | Failed of { code : string; detail : string }
      (** [code] is ["deadline"] (budget exceeded, before or during
          execution), ["bad_request"] (unloadable spec / malformed
          request) or ["crashed"] *)

(** The idempotency key of a [Run]/[Eval] request ([None] for the rest). *)
val request_key : request -> string option

(** Attach an idempotency key to a [Run]/[Eval] request (identity on the
    keyless ops). *)
val with_request_key : request -> string -> request

val encode_request : request -> Json.t
val decode_request : Json.t -> (request, string) result
val encode_response : response -> Json.t
val decode_response : Json.t -> (response, string) result
