(** Wire protocol of the [contango serve] daemon.

    Frames: a 4-byte big-endian payload length followed by that many
    bytes of compact JSON ({!Suite.Report.Json}). Both directions use
    the same framing; one request frame begets exactly one response
    frame, and a connection carries any number of request/response pairs
    sequentially. See doc/EXTENDING.md ("The serve protocol") for the
    field-level schema. *)

module Json = Suite.Report.Json

(** Torn, oversized or unparseable frame. A clean EOF between frames is
    never an error — {!read_frame} returns [None] for it. *)
exception Framing_error of string

(** Frame payload cap, bytes (16 MiB). *)
val max_frame : int

val write_frame : Unix.file_descr -> Json.t -> unit

(** [None] on clean EOF at a frame boundary.
    @raise Framing_error on torn/oversized/unparseable frames. *)
val read_frame : Unix.file_descr -> Json.t option

type request =
  | Run of { spec : string; timeout_s : float option }
      (** full-flow synthesis of a benchmark spec (anything
          {!Suite.Runner.load_bench} accepts); [timeout_s] is a
          per-request budget measured from the moment the request is
          accepted — queue wait counts against it *)
  | Eval of { spec : string; timeout_s : float option }
      (** greedy-CTS baseline construction + evaluation of a spec *)
  | Sleep of { seconds : float; timeout_s : float option }
      (** diagnostic: occupy one worker slot for [seconds] — gives tests
          and drills a deterministic way to fill the queue *)
  | Stats   (** daemon telemetry; answered inline, never queued *)
  | Ping    (** liveness probe; answered inline *)
  | Shutdown  (** stop accepting, drain in-flight work, exit *)

type response =
  | Completed of { op : string; body : Json.t }
      (** the op-specific payload — e.g. a [run] body carries
          [result.{skew_ps,clr_ps,t_max_ps,buffers,eval_runs,seconds}]
          and [cache.{local_hits,local_misses,store_hits,store_misses}] *)
  | Busy of { retry_after_s : float }
      (** bounded queue full — retry after the hinted delay *)
  | Failed of { code : string; detail : string }
      (** [code] is ["deadline"] (budget exceeded, before or during
          execution), ["bad_request"] (unloadable spec / malformed
          request) or ["crashed"] *)

val encode_request : request -> Json.t
val decode_request : Json.t -> (request, string) result
val encode_response : response -> Json.t
val decode_response : Json.t -> (response, string) result
