(** Cross-links: extra wires between nearby sinks of a clock tree.

    Prior literature advocates inserting non-tree links between sinks to
    average out variation-induced arrival differences; the paper's
    conclusion argues that trees as well-tuned as Contango's "can make it
    difficult to justify the insertion of cross-links". This module makes
    that claim measurable: it evaluates a sink pair's arrival divergence
    under upstream-variation jitter with and without a linking wire.

    Linked sinks generally live in different driver stages, so the
    coupled system is no longer a tree: the two stages are merged into one
    {!Network} with two Thevenin sources (each launching at its tree
    arrival time) and the link resistor between the sink nodes. *)

type result = {
  unlinked : float;  (** mean |arrival difference| without the link, ps *)
  linked : float;    (** same with the link in place, ps *)
  link_cap : float;  (** capacitance cost of the link wire, fF *)
}

(** [evaluate tree ~eval ~pair ~sigma ~trials ~seed] — [pair] are two sink
    ids; their stage launches are jittered by Gaussian [sigma] ps
    (upstream path variation) over [trials] samples. The link is routed as
    the direct wire between the sinks, in the technology's widest class.
    @raise Invalid_argument when the ids are not sinks. *)
val evaluate :
  Ctree.Tree.t -> eval:Analysis.Evaluator.t -> pair:int * int ->
  ?sigma:float -> ?trials:int -> ?seed:int -> unit -> result

(** The sink pairs most likely to benefit: within [radius] nm of each
    other but whose tree paths diverge early (measured as tree-path
    distance / geometric distance), best candidates first, at most
    [limit]. *)
val candidates :
  Ctree.Tree.t -> radius:int -> ?limit:int -> unit -> (int * int) list
