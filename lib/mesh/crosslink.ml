open Geometry
module Tree = Ctree.Tree
module Ev = Analysis.Evaluator

type result = { unlinked : float; linked : float; link_cap : float }

(* Nearest buffer (or source) ancestor: the sink's stage driver. *)
let rec driver_of tree i =
  let nd = Tree.node tree i in
  if nd.Tree.parent < 0 then i
  else
    match (Tree.node tree nd.Tree.parent).Tree.kind with
    | Tree.Buffer _ | Tree.Source -> nd.Tree.parent
    | _ -> driver_of tree nd.Tree.parent

let r_out_of tree driver =
  match (Tree.node tree driver).Tree.kind with
  | Tree.Buffer b -> Tech.Composite.r_out b
  | _ -> (Tree.tech tree).Tech.source_r

(* Build a Network mirroring one rc stage; returns the map rc-node →
   network-node and the network node carrying the stage's driver. *)
let add_stage net (rc : Analysis.Rcnet.t) =
  let map = Array.make rc.Analysis.Rcnet.size (-1) in
  for i = 0 to rc.Analysis.Rcnet.size - 1 do
    map.(i) <- Network.add_node net ~cap:rc.Analysis.Rcnet.cap.(i)
  done;
  for i = 1 to rc.Analysis.Rcnet.size - 1 do
    Network.add_res net
      map.(rc.Analysis.Rcnet.parent.(i))
      map.(i)
      (Float.max 1e-3 rc.Analysis.Rcnet.res.(i))
  done;
  map

let sink_net_node (rc : Analysis.Rcnet.t) map sink =
  let found = ref (-1) in
  Array.iter
    (fun (idx, tap) ->
      match tap with
      | Analysis.Rcnet.Tap_sink s when s = sink -> found := map.(idx)
      | _ -> ())
    rc.Analysis.Rcnet.taps;
  if !found < 0 then invalid_arg "Crosslink: node is not a sink of its stage";
  !found

(* Gaussian PRNG as elsewhere. *)
let normal state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let u i = Int64.to_float (Int64.shift_right_logical (mix (Int64.add !state (Int64.of_int i))) 11)
            /. 9007199254740992.0 in
  let u1 = Float.max 1e-12 (u 1) and u2 = u 2 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let evaluate tree ~eval ~pair:(a, b) ?(sigma = 5.) ?(trials = 20) ?(seed = 1) () =
  (match ((Tree.node tree a).Tree.kind, (Tree.node tree b).Tree.kind) with
  | Tree.Sink _, Tree.Sink _ -> ()
  | _ -> invalid_arg "Crosslink.evaluate: pair must be sinks");
  let tech = Tree.tech tree in
  let run = Ev.nominal_run eval Ev.Rise in
  let da = driver_of tree a and db = driver_of tree b in
  let stages = Analysis.Rcnet.stages tree in
  let stage_of d =
    List.find (fun s -> s.Analysis.Rcnet.driver = d) stages
  in
  let sa = stage_of da in
  (* Launch time of a driver such that the simulated sink arrival matches
     the evaluator: launch = sink arrival − stage delay; with jitter added
     per trial it models upstream path variation. *)
  let simulate_signed ~with_link ~calib jitter_a jitter_b =
    let net = Network.create () in
    let map_a = add_stage net sa.Analysis.Rcnet.rc in
    let same_stage = da = db in
    let sb = if same_stage then sa else stage_of db in
    let map_b = if same_stage then map_a else add_stage net sb.Analysis.Rcnet.rc in
    let na = sink_net_node sa.Analysis.Rcnet.rc map_a a in
    let nb = sink_net_node sb.Analysis.Rcnet.rc map_b b in
    if with_link then begin
      let wire = Tech.wire tech (Tech.widest_wire tech) in
      let len = Point.dist (Tree.node tree a).Tree.pos (Tree.node tree b).Tree.pos in
      let r = Float.max 1e-3 (Tech.Wire.res wire len) in
      Network.add_res net na nb r;
      Network.add_cap net na (Tech.Wire.cap wire len /. 2.);
      Network.add_cap net nb (Tech.Wire.cap wire len /. 2.)
    end;
    (* Stage-local delays from a quick solo simulation are implicit: use
       the evaluator's sink latencies minus a common offset — only the
       DIFFERENCE of launches matters for the arrival difference, so
       launch each driver at (sink latency + jitter) minus its stage's own
       nominal delay; approximating both stage delays as equal offsets
       keeps the nominal difference equal to the evaluator's. *)
    let base = 200. in
    let launch_a = base +. jitter_a in
    let launch_b =
      base +. jitter_b +. (run.Ev.latency.(b) -. run.Ev.latency.(a)) +. calib
    in
    let sources =
      let src node launch driver =
        { Network.node; r_drv = r_out_of tree driver; t0 = launch; ramp = 20. }
      in
      if same_stage then
        [ src map_a.(0) (Float.min launch_a launch_b) da ]
      else
        [ src map_a.(0) launch_a da; src map_b.(0) launch_b db ]
    in
    let results = Network.transient net ~sources ~watch:[| na; nb |] () in
    fst results.(0) -. fst results.(1)
  in
  (* Calibrate out the stage-model bias: at zero jitter the simulated
     signed difference must equal the evaluator's nominal difference. *)
  let desired = run.Ev.latency.(a) -. run.Ev.latency.(b) in
  let raw0 = simulate_signed ~with_link:false ~calib:0. 0. 0. in
  let calib = raw0 -. desired in
  let simulate ~with_link ja jb =
    Float.abs (simulate_signed ~with_link ~calib ja jb)
  in
  let state = ref (Int64.of_int seed) in
  let acc_un = ref 0. and acc_li = ref 0. in
  for _ = 1 to trials do
    let ja = sigma *. normal state and jb = sigma *. normal state in
    acc_un := !acc_un +. simulate ~with_link:false ja jb;
    acc_li := !acc_li +. simulate ~with_link:true ja jb
  done;
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let len = Point.dist (Tree.node tree a).Tree.pos (Tree.node tree b).Tree.pos in
  {
    unlinked = !acc_un /. float_of_int trials;
    linked = !acc_li /. float_of_int trials;
    link_cap = Tech.Wire.cap wire len;
  }

let candidates tree ~radius ?(limit = 8) () =
  let sinks = Tree.sinks tree in
  (* Tree-path distance via lowest common ancestor depth. *)
  let n = Tree.size tree in
  let depth = Array.make n 0 in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then depth.(i) <- depth.(nd.Tree.parent) + 1)
    (Tree.topo_order tree);
  let rec lca x y =
    if x = y then x
    else if depth.(x) > depth.(y) then lca (Tree.node tree x).Tree.parent y
    else lca x (Tree.node tree y).Tree.parent
  in
  let scored = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if j > i then begin
            let d =
              Point.dist (Tree.node tree a).Tree.pos (Tree.node tree b).Tree.pos
            in
            if d > 0 && d <= radius then begin
              let l = lca a b in
              (* early divergence = shallow LCA relative to the sinks *)
              let divergence =
                float_of_int (depth.(a) + depth.(b) - (2 * depth.(l)))
                /. float_of_int (max 1 d)
              in
              scored := (divergence, (a, b)) :: !scored
            end
          end)
        sinks)
    sinks;
  List.sort (fun (x, _) (y, _) -> Float.compare y x) !scored
  |> List.filteri (fun i _ -> i < limit)
  |> List.map snd
