open Geometry

type t = {
  tech : Tech.t;
  region : Rect.t;
  nx : int;
  ny : int;
  net : Network.t;
  grid : int array array;    (* grid.(ix).(iy) = network node id *)
  xs : int array;            (* grid x coordinates *)
  ys : int array;
  sink_watch : int array;    (* network node per sink *)
  wire_cap : float;
}

let build ~tech ~region ~nx ~ny ~sinks =
  if nx < 2 || ny < 2 then invalid_arg "Grid_mesh.build: nx/ny < 2";
  if Array.length sinks = 0 then invalid_arg "Grid_mesh.build: no sinks";
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let net = Network.create () in
  let xs =
    Array.init nx (fun i ->
        region.Rect.lx + (i * (Rect.width region) / (nx - 1)))
  in
  let ys =
    Array.init ny (fun j ->
        region.Rect.ly + (j * (Rect.height region) / (ny - 1)))
  in
  let wire_cap = ref 0. in
  let grid =
    Array.init nx (fun _ -> Array.init ny (fun _ -> Network.add_node net ~cap:0.))
  in
  (* Horizontal and vertical mesh segments: R between neighbours, C split
     onto the endpoints. *)
  let connect a b len =
    let r = Tech.Wire.res wire len and c = Tech.Wire.cap wire len in
    Network.add_res net a b r;
    Network.add_cap net a (c /. 2.);
    Network.add_cap net b (c /. 2.);
    wire_cap := !wire_cap +. c
  in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      if i + 1 < nx then connect grid.(i).(j) grid.(i + 1).(j) (xs.(i + 1) - xs.(i));
      if j + 1 < ny then connect grid.(i).(j) grid.(i).(j + 1) (ys.(j + 1) - ys.(j))
    done
  done;
  (* Sink stubs to the nearest mesh node. *)
  let nearest_idx arr v =
    let best = ref 0 in
    Array.iteri (fun i x -> if abs (x - v) < abs (arr.(!best) - v) then best := i) arr;
    !best
  in
  let sink_watch =
    Array.map
      (fun ((p : Point.t), cap) ->
        let ix = nearest_idx xs p.x and iy = nearest_idx ys p.y in
        let mesh_node = grid.(ix).(iy) in
        let d = abs (xs.(ix) - p.x) + abs (ys.(iy) - p.y) in
        if d = 0 then begin
          Network.add_cap net mesh_node cap;
          mesh_node
        end
        else begin
          let s = Network.add_node net ~cap in
          connect mesh_node s d;
          s
        end)
      sinks
  in
  { tech; region; nx; ny; net; grid; xs; ys; sink_watch; wire_cap = !wire_cap }

let wire_cap t = t.wire_cap

let tap_points t ~k =
  if k < 1 then invalid_arg "Grid_mesh.tap_points: k < 1";
  let pick n i =
    (* i-th of k indices evenly spread over 0..n-1 *)
    if k = 1 then n / 2 else i * (n - 1) / (k - 1)
  in
  Array.init (k * k) (fun idx ->
      let i = pick t.nx (idx / k) and j = pick t.ny (idx mod k) in
      Point.make t.xs.(i) t.ys.(j))

type tap = { pos : Point.t; arrival : float; r_drv : float; ramp : float }

type result = {
  skew : float;
  t_min : float;
  t_max : float;
  worst_slew : float;
  latencies : float array;
}

let node_at t (p : Point.t) =
  let idx arr v =
    let best = ref 0 in
    Array.iteri (fun i x -> if abs (x - v) < abs (arr.(!best) - v) then best := i) arr;
    !best
  in
  t.grid.(idx t.xs p.x).(idx t.ys p.y)

let evaluate t ~taps ?step () =
  if taps = [] then invalid_arg "Grid_mesh.evaluate: no taps";
  let sources =
    List.map
      (fun tap ->
        { Network.node = node_at t tap.pos; r_drv = tap.r_drv;
          t0 = tap.arrival; ramp = tap.ramp })
      taps
  in
  let results =
    Network.transient t.net ~sources ~watch:t.sink_watch ?step ()
  in
  let t_min = ref infinity and t_max = ref neg_infinity and ws = ref 0. in
  let latencies =
    Array.map
      (fun (t50, slew) ->
        if Float.is_finite t50 then begin
          if t50 < !t_min then t_min := t50;
          if t50 > !t_max then t_max := t50;
          if slew > !ws then ws := slew
        end;
        t50)
      results
  in
  { skew = !t_max -. !t_min; t_min = !t_min; t_max = !t_max;
    worst_slew = !ws; latencies }

let hybrid ?(config = Core.Config.default) ~tech ~source ~k t =
  let taps = tap_points t ~k in
  (* Each tap sees a share of the mesh as load. The mesh capacitance is
     distributed behind mesh resistance, not lumped at the pin, so the
     effective load for tree synthesis is capped well below the raw share
     — a crude but adequate estimate; the mesh smooths residual error. *)
  let share = (t.wire_cap /. float_of_int (Array.length taps)) /. 4. in
  let pseudo_sinks =
    Array.mapi
      (fun i p ->
        { Dme.Zst.pos = p; cap = Float.min share 120.; parity = 0;
          label = Printf.sprintf "tap%d" i })
      taps
  in
  let flow = Core.Flow.run ~config ~tech ~source pseudo_sinks in
  let run =
    Analysis.Evaluator.nominal_run flow.Core.Flow.final Analysis.Evaluator.Rise
  in
  let tree = flow.Core.Flow.tree in
  (* Driver of each tap: its nearest buffer ancestor in the tree. *)
  let rec driver_of i =
    let nd = Ctree.Tree.node tree i in
    if nd.Ctree.Tree.parent < 0 then None
    else
      match (Ctree.Tree.node tree nd.Ctree.Tree.parent).Ctree.Tree.kind with
      | Ctree.Tree.Buffer b -> Some b
      | _ -> driver_of nd.Ctree.Tree.parent
  in
  let tap_list =
    Array.to_list (Ctree.Tree.sinks tree)
    |> List.map (fun s ->
           let nd = Ctree.Tree.node tree s in
           let r_drv =
             match driver_of s with
             | Some b -> Tech.Composite.r_out b
             | None -> tech.Tech.source_r
           in
           {
             pos = nd.Ctree.Tree.pos;
             arrival = run.Analysis.Evaluator.latency.(s);
             r_drv;
             ramp = Float.max 5. run.Analysis.Evaluator.slew.(s);
           })
  in
  (evaluate t ~taps:tap_list (), flow)
