(** General (non-tree) RC networks with transient simulation.

    Clock meshes contain resistive loops, so the tree-structured O(n)
    solver of {!Analysis.Transient} does not apply. This module simulates
    arbitrary RC networks by backward Euler with a Jacobi-preconditioned
    conjugate-gradient solve per step (the system matrix [C/h + G] is
    symmetric positive definite); the previous step's solution warm-starts
    the iteration, so a handful of CG iterations per step suffice.

    Units as everywhere: Ω, fF, ps. *)

type t

val create : unit -> t

(** Add a node with a grounded capacitance (fF); returns its id. *)
val add_node : t -> cap:float -> int

(** Increase a node's grounded capacitance. *)
val add_cap : t -> int -> float -> unit

(** Resistor between two nodes (Ω > 0). *)
val add_res : t -> int -> int -> float -> unit

val node_count : t -> int

(** A Thevenin driver: a saturated 0→1 ramp of duration [ramp] ps
    beginning at time [t0], connected to [node] through [r_drv] Ω. *)
type source = { node : int; r_drv : float; t0 : float; ramp : float }

(** [transient t ~sources ~watch ()] simulates until every watched node
    crossed 90 % (or [t_stop], default 5000 ps) and returns, per watched
    node, the absolute 50 % crossing time and the 10–90 % slew, ps.
    Uncrossed nodes report [infinity]. [step] defaults to 1 ps.
    @raise Invalid_argument when [sources] is empty. *)
val transient :
  t -> sources:source list -> watch:int array -> ?step:float ->
  ?t_stop:float -> unit -> (float * float) array
