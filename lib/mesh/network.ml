type t = {
  mutable caps : float array;   (* grounded cap per node, fF *)
  mutable n : int;
  mutable edges : (int * int * float) list;  (* (a, b, conductance) *)
}

let create () = { caps = Array.make 64 0.; n = 0; edges = [] }

let add_node t ~cap =
  if t.n = Array.length t.caps then begin
    let bigger = Array.make (2 * t.n) 0. in
    Array.blit t.caps 0 bigger 0 t.n;
    t.caps <- bigger
  end;
  let id = t.n in
  t.caps.(id) <- cap;
  t.n <- t.n + 1;
  id

let check_node t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Network.%s: invalid node %d" name i)

let add_cap t i c =
  check_node t i "add_cap";
  t.caps.(i) <- t.caps.(i) +. c

let add_res t a b r =
  check_node t a "add_res";
  check_node t b "add_res";
  if r <= 0. then invalid_arg "Network.add_res: nonpositive resistance";
  if a <> b then t.edges <- (a, b, 1. /. r) :: t.edges

let node_count t = t.n

type source = { node : int; r_drv : float; t0 : float; ramp : float }

(* CSR-ish adjacency for the conductance Laplacian. *)
type matrix = {
  diag : float array;           (* C/h + sum of incident conductances *)
  off_idx : int array array;    (* neighbours per node *)
  off_g : float array array;    (* conductance per neighbour *)
}

let build_matrix t ~sources ~h =
  let n = t.n in
  let diag = Array.make n 0. in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, g) ->
      diag.(a) <- diag.(a) +. g;
      diag.(b) <- diag.(b) +. g;
      adj.(a) <- (b, g) :: adj.(a);
      adj.(b) <- (a, g) :: adj.(b))
    t.edges;
  List.iter
    (fun s ->
      check_node t s.node "transient";
      diag.(s.node) <- diag.(s.node) +. (1. /. s.r_drv))
    sources;
  for i = 0 to n - 1 do
    diag.(i) <- diag.(i) +. (t.caps.(i) *. Tech.Units.rc_to_ps /. h)
  done;
  {
    diag;
    off_idx = Array.map (fun l -> Array.of_list (List.map fst l)) adj;
    off_g = Array.map (fun l -> Array.of_list (List.map snd l)) adj;
  }

(* y := (diag - offdiag) x  — the SPD system matrix applied to x. *)
let apply m x y =
  let n = Array.length m.diag in
  for i = 0 to n - 1 do
    let acc = ref (m.diag.(i) *. x.(i)) in
    let idx = m.off_idx.(i) and g = m.off_g.(i) in
    for k = 0 to Array.length idx - 1 do
      acc := !acc -. (g.(k) *. x.(idx.(k)))
    done;
    y.(i) <- !acc
  done

(* Jacobi-preconditioned CG, warm-started from [x]. *)
let cg m ~b ~x ~max_iter ~tol =
  let n = Array.length b in
  let r = Array.make n 0. and z = Array.make n 0. in
  let p = Array.make n 0. and ap = Array.make n 0. in
  apply m x r;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. r.(i);
    z.(i) <- r.(i) /. m.diag.(i);
    p.(i) <- z.(i)
  done;
  let dot a c =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (a.(i) *. c.(i))
    done;
    !acc
  in
  let rz = ref (dot r z) in
  let b_norm = Float.max 1e-30 (dot b b) in
  let iter = ref 0 in
  while !iter < max_iter && dot r r > tol *. tol *. b_norm do
    incr iter;
    apply m p ap;
    let alpha = !rz /. Float.max 1e-300 (dot p ap) in
    for i = 0 to n - 1 do
      x.(i) <- x.(i) +. (alpha *. p.(i));
      r.(i) <- r.(i) -. (alpha *. ap.(i))
    done;
    for i = 0 to n - 1 do
      z.(i) <- r.(i) /. m.diag.(i)
    done;
    let rz' = dot r z in
    let beta = rz' /. Float.max 1e-300 !rz in
    rz := rz';
    for i = 0 to n - 1 do
      p.(i) <- z.(i) +. (beta *. p.(i))
    done
  done

let ramp_v s t =
  if t <= s.t0 then 0.
  else if t >= s.t0 +. s.ramp then 1.
  else (t -. s.t0) /. s.ramp

let transient t ~sources ~watch ?(step = 1.0) ?(t_stop = 5000.) () =
  if sources = [] then invalid_arg "Network.transient: no sources";
  let n = t.n in
  let m = build_matrix t ~sources ~h:step in
  let v = Array.make n 0. and b = Array.make n 0. in
  let c_over_h = Array.map (fun c -> c *. Tech.Units.rc_to_ps /. step) t.caps in
  let nwatch = Array.length watch in
  let crossed = Array.make (nwatch * 3) nan in
  let prev = Array.make nwatch 0. in
  let remaining = ref (nwatch * 3) in
  let thresholds = [| 0.1; 0.5; 0.9 |] in
  let time = ref 0. in
  while !remaining > 0 && !time < t_stop do
    let t1 = !time +. step in
    for i = 0 to n - 1 do
      b.(i) <- c_over_h.(i) *. v.(i)
    done;
    List.iter
      (fun s -> b.(s.node) <- b.(s.node) +. (ramp_v s t1 /. s.r_drv))
      sources;
    cg m ~b ~x:v ~max_iter:200 ~tol:1e-8;
    for w = 0 to nwatch - 1 do
      let vw = v.(watch.(w)) in
      for k = 0 to 2 do
        if Float.is_nan crossed.((w * 3) + k) && vw >= thresholds.(k) then begin
          let frac =
            if vw -. prev.(w) <= 0. then 1.
            else (thresholds.(k) -. prev.(w)) /. (vw -. prev.(w))
          in
          crossed.((w * 3) + k) <- !time +. (frac *. step);
          decr remaining
        end
      done;
      prev.(w) <- vw
    done;
    time := t1
  done;
  Array.init nwatch (fun w ->
      let t10 = crossed.(w * 3) and t50 = crossed.((w * 3) + 1)
      and t90 = crossed.((w * 3) + 2) in
      if Float.is_nan t90 || Float.is_nan t10 then (infinity, infinity)
      else (t50, t90 -. t10))
