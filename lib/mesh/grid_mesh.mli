(** Clock meshes and tree–mesh hybrids.

    The paper's conclusion notes that Contango trees "can be integrated
    with meshes, as is common in modern CPU design — better trees allow
    using smaller meshes". This module provides that integration: a
    uniform nx × ny wire mesh over the sink region, sinks stubbed to their
    nearest mesh node, drive points ("taps") on the mesh fed by a Contango
    tree synthesised for the tap locations. The mesh's resistive loops
    average out the tree's residual arrival differences at the cost of
    mesh wire capacitance. *)

open Geometry

type t

(** [build ~tech ~region ~nx ~ny ~sinks] lays an nx × ny mesh of the
    technology's widest wire over [region] and stubs every sink to its
    nearest mesh node. @raise Invalid_argument when nx or ny < 2 or
    [sinks] is empty. *)
val build :
  tech:Tech.t -> region:Rect.t -> nx:int -> ny:int ->
  sinks:(Point.t * float) array -> t

(** Total mesh + stub wire capacitance, fF (the power price of the
    mesh). *)
val wire_cap : t -> float

(** [tap_points t ~k] — k × k evenly spread drive points (positions of
    mesh nodes). *)
val tap_points : t -> k:int -> Point.t array

type tap = {
  pos : Point.t;       (** tap position (a mesh node) *)
  arrival : float;     (** 50 % launch time of the driver output, ps *)
  r_drv : float;       (** driver Thevenin resistance, Ω *)
  ramp : float;        (** driver ramp duration, ps *)
}

type result = {
  skew : float;        (** max − min sink 50 % arrival, ps *)
  t_min : float;
  t_max : float;
  worst_slew : float;  (** worst 10–90 % slew at any sink, ps *)
  latencies : float array;  (** per sink, in input order *)
}

(** Simulate the mesh driven at the given taps (each an independent ramp
    source through its driver resistance, offset by its tree arrival
    time). *)
val evaluate : t -> taps:tap list -> ?step:float -> unit -> result

(** End-to-end hybrid: synthesise a Contango tree over the k × k tap
    points of this mesh (each tap presents the mesh capacitance share as
    its load), then evaluate the mesh with the tree's arrivals. Returns
    the mesh result together with the tree flow result. *)
val hybrid :
  ?config:Core.Config.t -> tech:Tech.t -> source:Point.t -> k:int -> t ->
  result * Core.Flow.result
