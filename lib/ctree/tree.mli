(** The buffered clock tree: a mutable rooted tree over layout nodes.

    Every non-root node owns the wire from its parent: a wire class, a
    geometric (routed) length, an optional snaked extension, and an
    embedding (L-bend choice or explicit detour polyline). Buffers are
    nodes carrying a composite inverter; sinks carry a load capacitance and
    a required signal parity.

    The structure supports the surgery the Contango flow needs: splitting
    wires, inserting/removing buffers, sliding buffers along their wire
    span, deep copies for IVC rollback. Node ids are dense and stable —
    surgery only adds nodes or changes node kinds in place. *)

open Geometry

type sink = {
  cap : float;         (** load capacitance, fF *)
  parity : int;        (** required number of inversions mod 2 from source *)
  label : string;
}

type kind =
  | Source
  | Internal
  | Buffer of Tech.Composite.t
  | Sink of sink

type node = {
  id : int;
  mutable kind : kind;
  mutable pos : Point.t;
  mutable parent : int;     (** -1 for the root *)
  mutable children : int list;
  mutable wire_class : int; (** index into tech wire classes *)
  mutable geom_len : int;   (** routed geometric length of the parent wire, nm *)
  mutable snake : int;      (** extra snaked wirelength, nm *)
  mutable bend : Segment.L.config;
  mutable route : Point.t list;
      (** explicit polyline from parent position to [pos] (both included)
          when the wire is detoured; [[]] means L-shape embedding *)
}

type t

val create : tech:Tech.t -> source_pos:Point.t -> t
val tech : t -> Tech.t
val root : t -> int
val size : t -> int
val node : t -> int -> node

(** Monotone counter bumped by every mutating operation. Incremental
    evaluators use it as a cheap "has anything changed?" fast path; the
    content-hash cache keeps them correct even for direct field writes
    that bypass the counter. *)
val revision : t -> int

(** Manually bump {!revision} after mutating node fields directly. *)
val touch : t -> unit

(** Electrical length of the parent wire: geometric plus snake. *)
val wire_len : node -> int

(** Wire class record of a node's parent wire. *)
val wire_of : t -> node -> Tech.Wire.t

(** Total capacitance of the parent wire (electrical length), fF. *)
val wire_cap : t -> node -> float

(** Add a node. [geom_len] defaults to the Manhattan distance from the
    parent's position; [wire_class] defaults to the technology's widest
    wire. @raise Invalid_argument for an invalid parent. *)
val add_node :
  t -> kind:kind -> pos:Point.t -> parent:int -> ?wire_class:int ->
  ?geom_len:int -> ?bend:Segment.L.config -> unit -> int

(** Replace a wire's embedding by an explicit polyline (first point must be
    the parent position, last the node position); updates [geom_len]. *)
val set_route : t -> int -> Point.t list -> unit

(** Geometric point at distance [d] (0 ≤ d ≤ geom_len) from the parent end
    along the wire's embedding. *)
val point_along_wire : t -> int -> int -> Point.t

(** [split_wire t id ~at] inserts an [Internal] node on the wire from
    [parent id] to [id] at geometric distance [at] from the parent end and
    returns the new node's id. Snake length is split proportionally.
    @raise Invalid_argument when [at] is outside [0, geom_len]. *)
val split_wire : t -> int -> at:int -> int

(** Insert a buffer on a wire ([split_wire] + set kind). Returns the new
    buffer node id. *)
val insert_buffer_on_wire : t -> int -> at:int -> buf:Tech.Composite.t -> int

(** Turn a buffer node back into an internal node. *)
val remove_buffer : t -> int -> unit

(** Place a buffer directly at an existing internal node. *)
val set_buffer : t -> int -> Tech.Composite.t -> unit

(** Set the wire class of a node's parent wire (bumps {!revision}). *)
val set_wire_class : t -> int -> int -> unit

(** Set the snaked extra length of a node's parent wire, nm (bumps
    {!revision}). *)
val set_snake : t -> int -> int -> unit

(** Set the routed geometric length of a node's parent wire, nm (bumps
    {!revision}). *)
val set_geom_len : t -> int -> int -> unit

val sinks : t -> int array
val buffer_ids : t -> int array

(** Ids in topological order (each parent before its children). *)
val topo_order : t -> int array

(** Leaves-first order (reverse topological). *)
val post_order : t -> int array

val iter : t -> (node -> unit) -> unit

(** Number of signal inversions between the source and each node. *)
val inversions : t -> int array

(** Sink ids in the subtree rooted at a node. *)
val subtree_sinks : t -> int -> int list

(** Detach the subtree rooted at [id] from its parent. The nodes remain
    allocated but unreachable until {!compact} is called; traversals skip
    them. @raise Invalid_argument on the root. *)
val detach : t -> int -> unit

(** Attach a previously detached node (or move a node) under a new parent,
    keeping its wire class and recomputing [geom_len] from positions
    (explicit routes and snake are cleared). *)
val reparent : t -> int -> new_parent:int -> unit

(** Rebuild the tree keeping only nodes reachable from the root, with
    dense ids. Returns the new tree and the old→new id mapping (-1 for
    dropped nodes). *)
val compact : t -> t * int array

(** Deep structural copy (shares only the technology). *)
val copy : t -> t

(** Make [dst] structurally identical to [src] (deep). Both must share the
    same technology. *)
val assign : dst:t -> src:t -> unit
