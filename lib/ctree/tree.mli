(** The buffered clock tree: a mutable rooted tree over layout nodes.

    Every non-root node owns the wire from its parent: a wire class, a
    geometric (routed) length, an optional snaked extension, and an
    embedding (L-bend choice or explicit detour polyline). Buffers are
    nodes carrying a composite inverter; sinks carry a load capacitance and
    a required signal parity.

    The structure supports the surgery the Contango flow needs: splitting
    wires, inserting/removing buffers, sliding buffers along their wire
    span, deep copies for IVC rollback. Node ids are dense and stable —
    surgery only adds nodes or changes node kinds in place. *)

open Geometry

type sink = {
  cap : float;         (** load capacitance, fF *)
  parity : int;        (** required number of inversions mod 2 from source *)
  label : string;
}

type kind =
  | Source
  | Internal
  | Buffer of Tech.Composite.t
  | Sink of sink

type node = {
  id : int;
  mutable kind : kind;
  mutable pos : Point.t;
  mutable parent : int;     (** -1 for the root *)
  mutable children : int list;
  mutable wire_class : int; (** index into tech wire classes *)
  mutable geom_len : int;   (** routed geometric length of the parent wire, nm *)
  mutable snake : int;      (** extra snaked wirelength, nm *)
  mutable bend : Segment.L.config;
  mutable route : Point.t list;
      (** explicit polyline from parent position to [pos] (both included)
          when the wire is detoured; [[]] means L-shape embedding *)
}

type t

val create : tech:Tech.t -> source_pos:Point.t -> t
val tech : t -> Tech.t
val root : t -> int
val size : t -> int
val node : t -> int -> node

(** Monotone counter bumped by every mutating operation. Incremental
    evaluators use it as a cheap "has anything changed?" fast path; the
    content-hash cache keeps them correct even for direct field writes
    that bypass the counter. *)
val revision : t -> int

(** Manually bump {!revision} after mutating node fields directly. *)
val touch : t -> unit

(** Electrical length of the parent wire: geometric plus snake. *)
val wire_len : node -> int

(** Wire class record of a node's parent wire. *)
val wire_of : t -> node -> Tech.Wire.t

(** Total capacitance of the parent wire (electrical length), fF. *)
val wire_cap : t -> node -> float

(** Add a node. [geom_len] defaults to the Manhattan distance from the
    parent's position; [wire_class] defaults to the technology's widest
    wire. @raise Invalid_argument for an invalid parent. *)
val add_node :
  t -> kind:kind -> pos:Point.t -> parent:int -> ?wire_class:int ->
  ?geom_len:int -> ?bend:Segment.L.config -> unit -> int

(** Replace a wire's embedding by an explicit polyline (first point must be
    the parent position, last the node position); updates [geom_len]. *)
val set_route : t -> int -> Point.t list -> unit

(** Geometric point at distance [d] (0 ≤ d ≤ geom_len) from the parent end
    along the wire's embedding. *)
val point_along_wire : t -> int -> int -> Point.t

(** [split_wire t id ~at] inserts an [Internal] node on the wire from
    [parent id] to [id] at geometric distance [at] from the parent end and
    returns the new node's id. Snake length is split proportionally.
    @raise Invalid_argument when [at] is outside [0, geom_len]. *)
val split_wire : t -> int -> at:int -> int

(** Insert a buffer on a wire ([split_wire] + set kind). Returns the new
    buffer node id. *)
val insert_buffer_on_wire : t -> int -> at:int -> buf:Tech.Composite.t -> int

(** Turn a buffer node back into an internal node. *)
val remove_buffer : t -> int -> unit

(** Place a buffer directly at an existing internal node. *)
val set_buffer : t -> int -> Tech.Composite.t -> unit

(** Set the wire class of a node's parent wire (bumps {!revision}). *)
val set_wire_class : t -> int -> int -> unit

(** Set the snaked extra length of a node's parent wire, nm (bumps
    {!revision}). *)
val set_snake : t -> int -> int -> unit

(** Set the routed geometric length of a node's parent wire, nm (bumps
    {!revision}). *)
val set_geom_len : t -> int -> int -> unit

val sinks : t -> int array
val buffer_ids : t -> int array

(** Ids in topological order (each parent before its children). *)
val topo_order : t -> int array

(** Leaves-first order (reverse topological). *)
val post_order : t -> int array

val iter : t -> (node -> unit) -> unit

(** Number of signal inversions between the source and each node. *)
val inversions : t -> int array

(** Sink ids in the subtree rooted at a node. *)
val subtree_sinks : t -> int -> int list

(** Detach the subtree rooted at [id] from its parent. The nodes remain
    allocated but unreachable until {!compact} is called; traversals skip
    them. @raise Invalid_argument on the root. *)
val detach : t -> int -> unit

(** Attach a previously detached node (or move a node) under a new parent,
    keeping its wire class and recomputing [geom_len] from positions
    (explicit routes and snake are cleared). *)
val reparent : t -> int -> new_parent:int -> unit

(** Rebuild the tree keeping only nodes reachable from the root, with
    dense ids. Returns the new tree and the old→new id mapping (-1 for
    dropped nodes). *)
val compact : t -> t * int array

(** Deep structural copy (shares only the technology). *)
val copy : t -> t

(** Process-wide count of {!copy} calls. The IVC attempt hot path must not
    deep-copy (journal rollback replaced snapshots); tests assert the
    counter stays flat across attempt/rollback cycles. *)
val copies : unit -> int

(** Make [dst] structurally identical to [src] (deep). Both must share the
    same technology. @raise Invalid_argument if [dst] has an active
    journal. *)
val assign : dst:t -> src:t -> unit

(** [graft t ~at ~buf ~src] — abutment graft for the regional flow:
    appends [src]'s reachable nodes (minus its source) onto [t],
    identifying [src]'s source with [t]'s childless node [at], which
    becomes a [Buffer buf] (the regional root driver — it isolates the
    grafted subtree into its own driver stages). New ids follow [src]'s
    topological order, so grafting is deterministic. Returns the
    [src]-id → [t]-id map ([map.(0) = at]; -1 for unreachable nodes).
    Counts as one revision bump. Both trees must share the same
    technology (physically), carry no active journal, and [at] must be a
    childless non-source node at exactly [src]'s source position.
    @raise Invalid_argument otherwise. *)
val graft : t -> at:int -> buf:Tech.Composite.t -> src:t -> int array

(** 64-bit FNV-1a content hash over the full structural state (topology,
    kinds, buffer parameters, geometry, embeddings). Equal digests mean —
    up to hash collision — identical trees; used by the parallel-vs-serial
    determinism tests. *)
val digest : t -> int64

(** Canonical line-oriented text serialization. Floats are hex literals,
    node/children/route lines are emitted in id order with children order
    preserved, so [of_string ~tech (to_string t)] rebuilds a tree with
    the same {!digest}. The technology is shared, never serialized. *)
val to_string : t -> string

(** Parse {!to_string} output against a technology. Buffer devices are
    resolved by name (with bit-exact electricals) in [tech]'s library,
    falling back to reconstructing the recorded device. Never raises:
    malformed input yields [Error "line N: ..."]. The parsed tree has
    revision 0 and no journal. *)
val of_string : tech:Tech.t -> string -> (t, string) result

type journal

(** Undo/redo log for speculative edits (IVC attempt/rollback).

    While a journal is active on a tree, every public mutator records the
    old value of each field it writes, so {!Journal.rollback} restores the
    exact pre-journal state in O(edit) time instead of a full-tree copy.

    {b Invariant}: between {!Journal.start} and close, the tree must only
    be mutated through the public mutators of this module. Direct field
    writes (even followed by a manual {!touch}) make the undo log
    incomplete; the journal detects the mismatch via
    [revision = base_revision + ops] and {!Journal.rollback} refuses to
    run. A bare {!touch} with no field write is equally inconsistent. *)
module Journal : sig
  (** Open a journal on a tree. @raise Invalid_argument if one is already
      active (journals do not nest). *)
  val start : t -> journal

  (** Revision the tree had when the journal was opened. *)
  val base_revision : journal -> int

  (** Number of journaled mutation sites recorded so far. *)
  val ops : journal -> int

  (** [true] while every recorded mutation was a value edit (wire class,
      snake, geometry, route, buffer rescale) — the stage partitioning of
      the tree is unchanged, so the touched set below is a sound dirty
      hint for incremental evaluation. Structural edits (node insertion,
      buffer insertion/removal, detach/reparent, placing a buffer on an
      internal node) clear it. *)
  val value_only : journal -> bool

  (** Sorted, deduplicated ids of the nodes whose parent-wire or kind the
      journal touched. *)
  val touched : journal -> int list

  (** [revision tree = base_revision + ops] — no mutation bypassed the
      journal. Checked by {!rollback}; callers check it before using
      {!touched} as a dirty hint. *)
  val consistent : journal -> bool

  (** Undo every recorded mutation (newest first), detach the journal and
      bump the revision once (the revision is never restored, protecting
      revision-keyed memos). Captures a redo log first, so {!replay}
      still works after rollback. @raise Invalid_argument if the journal
      is closed or {!consistent} is false (the tree is left untouched). *)
  val rollback : journal -> unit

  (** Keep the mutations, capture the redo log and detach the journal. *)
  val commit : journal -> unit

  (** Detach the journal without restoring anything — for exception paths
      where the tree's state is no longer trusted (the caller must
      resynchronise it, e.g. with {!assign}). *)
  val abandon : journal -> unit

  (** Re-apply the journal's net effect onto a tree that is
      content-identical to the journal's base state (e.g. the main tree
      after the journal ran on a replica). Works after {!rollback} or
      {!commit}. @raise Invalid_argument if the journal is still open,
      the target has an active journal, or the target's size differs
      from the base. *)
  val replay : journal -> onto:t -> unit
end
