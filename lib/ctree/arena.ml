(* Struct-of-arrays snapshot of a {!Tree}: topology as parent /
   first-child / next-sibling index arrays (sibling order preserves the
   tree's children-list order, which fixes the RC extraction order), and
   the per-node electrical constants pre-resolved from the technology
   into flat [Bigarray] float64 buffers. The flat RC compiler
   ([Analysis.Rcflat]) walks these arrays instead of chasing boxed node
   records, so a stage extraction touches only dense memory.

   The snapshot is keyed by the tree's revision counter: [sync] is a
   no-op while the revision matches, applies a touched-node patch when
   the caller can vouch for the dirty set (the journal's touched list),
   and falls back to a full recompile otherwise. Electrical values are
   stored exactly as the boxed accessors produce them
   ([Tech.Wire.res]/[Tech.Composite.c_in]/…), so any arithmetic the flat
   path performs on them is bit-identical to the boxed path's. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba n : f64 =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max n 1) in
  Bigarray.Array1.fill a 0.;
  a

(* Kind tags; dense ints so the extraction switch is a flat compare. *)
let k_source = 0
let k_internal = 1
let k_buffer = 2
let k_sink = 3

type t = {
  tree : Tree.t;
  mutable revision : int;  (* tree revision the arrays reflect *)
  mutable n : int;
  (* Topology *)
  mutable parent : int array;
  mutable first_child : int array;   (* -1 = leaf *)
  mutable next_sibling : int array;  (* -1 = last sibling *)
  (* Per-node scalars *)
  mutable kind : int array;          (* k_source … k_sink *)
  mutable len : int array;           (* electrical wire length, nm *)
  mutable xs : int array;
  mutable ys : int array;
  mutable inverting : int array;     (* buffers: 1 when inverting *)
  (* Electricals, resolved against the shared technology *)
  mutable wire_r : f64;              (* Tech.Wire.res wire len *)
  mutable wire_c : f64;              (* Tech.Wire.cap wire len *)
  mutable tap_c : f64;               (* sink load or buffer input cap *)
  mutable drv_c_out : f64;           (* buffer output cap *)
  mutable drv_r_up : f64;
  mutable drv_r_down : f64;
  mutable drv_d_intr : f64;
  mutable drv_slew_c : f64;
}

let update_node a id =
  let nd = Tree.node a.tree id in
  a.parent.(id) <- nd.Tree.parent;
  let len = Tree.wire_len nd in
  a.len.(id) <- len;
  a.xs.(id) <- nd.Tree.pos.Geometry.Point.x;
  a.ys.(id) <- nd.Tree.pos.Geometry.Point.y;
  (if nd.Tree.parent >= 0 then begin
     let wire = Tree.wire_of a.tree nd in
     a.wire_r.{id} <- Tech.Wire.res wire len;
     a.wire_c.{id} <- Tech.Wire.cap wire len
   end
   else begin
     a.wire_r.{id} <- 0.;
     a.wire_c.{id} <- 0.
   end);
  match nd.Tree.kind with
  | Tree.Source ->
    a.kind.(id) <- k_source;
    a.tap_c.{id} <- 0.;
    a.drv_c_out.{id} <- 0.;
    a.drv_r_up.{id} <- 0.;
    a.drv_r_down.{id} <- 0.;
    a.drv_d_intr.{id} <- 0.;
    a.drv_slew_c.{id} <- 0.;
    a.inverting.(id) <- 0
  | Tree.Internal ->
    a.kind.(id) <- k_internal;
    a.tap_c.{id} <- 0.;
    a.drv_c_out.{id} <- 0.;
    a.drv_r_up.{id} <- 0.;
    a.drv_r_down.{id} <- 0.;
    a.drv_d_intr.{id} <- 0.;
    a.drv_slew_c.{id} <- 0.;
    a.inverting.(id) <- 0
  | Tree.Buffer b ->
    a.kind.(id) <- k_buffer;
    a.tap_c.{id} <- Tech.Composite.c_in b;
    a.drv_c_out.{id} <- Tech.Composite.c_out b;
    a.drv_r_up.{id} <- Tech.Composite.r_up b;
    a.drv_r_down.{id} <- Tech.Composite.r_down b;
    a.drv_d_intr.{id} <- Tech.Composite.d_intrinsic b;
    a.drv_slew_c.{id} <- Tech.Composite.slew_coeff b;
    a.inverting.(id) <- (if Tech.Composite.inverting b then 1 else 0)
  | Tree.Sink s ->
    a.kind.(id) <- k_sink;
    a.tap_c.{id} <- s.Tree.cap;
    a.drv_c_out.{id} <- 0.;
    a.drv_r_up.{id} <- 0.;
    a.drv_r_down.{id} <- 0.;
    a.drv_d_intr.{id} <- 0.;
    a.drv_slew_c.{id} <- 0.;
    a.inverting.(id) <- 0

(* Rebuild the sibling chain below [id] from the tree's children list;
   also refreshes the children's parent back-pointers (a reparent edit
   touches both ends, but rewriting here costs nothing and keeps the
   chain self-consistent whichever end the caller patches first). *)
let rebuild_chain a id =
  let nd = Tree.node a.tree id in
  let rec link = function
    | [] -> -1
    | c :: rest ->
      a.parent.(c) <- id;
      a.next_sibling.(c) <- link rest;
      c
  in
  a.first_child.(id) <- link nd.Tree.children

let recompile a =
  let n = Tree.size a.tree in
  if n <> a.n || Array.length a.parent < n then begin
    a.n <- n;
    a.parent <- Array.make (max n 1) (-1);
    a.first_child <- Array.make (max n 1) (-1);
    a.next_sibling <- Array.make (max n 1) (-1);
    a.kind <- Array.make (max n 1) k_internal;
    a.len <- Array.make (max n 1) 0;
    a.xs <- Array.make (max n 1) 0;
    a.ys <- Array.make (max n 1) 0;
    a.inverting <- Array.make (max n 1) 0;
    a.wire_r <- ba n;
    a.wire_c <- ba n;
    a.tap_c <- ba n;
    a.drv_c_out <- ba n;
    a.drv_r_up <- ba n;
    a.drv_r_down <- ba n;
    a.drv_d_intr <- ba n;
    a.drv_slew_c <- ba n
  end;
  a.n <- n;
  for id = 0 to n - 1 do
    update_node a id;
    rebuild_chain a id
  done;
  a.revision <- Tree.revision a.tree

let compile tree =
  let a =
    { tree; revision = min_int; n = 0; parent = [||]; first_child = [||];
      next_sibling = [||]; kind = [||]; len = [||]; xs = [||]; ys = [||];
      inverting = [||]; wire_r = ba 0; wire_c = ba 0; tap_c = ba 0;
      drv_c_out = ba 0; drv_r_up = ba 0; drv_r_down = ba 0;
      drv_d_intr = ba 0; drv_slew_c = ba 0 }
  in
  recompile a;
  a

let in_sync a = a.revision = Tree.revision a.tree
let revision a = a.revision
let tree a = a.tree
let size a = a.n
let root a = Tree.root a.tree

let sync ?touched a =
  if not (in_sync a) then
    match touched with
    | Some ids when Tree.size a.tree = a.n ->
      List.iter
        (fun id ->
          if id >= 0 && id < a.n then begin
            update_node a id;
            rebuild_chain a id
          end)
        ids;
      a.revision <- Tree.revision a.tree
    | _ -> recompile a
