open Geometry

type sink = { cap : float; parity : int; label : string }

type kind =
  | Source
  | Internal
  | Buffer of Tech.Composite.t
  | Sink of sink

type node = {
  id : int;
  mutable kind : kind;
  mutable pos : Point.t;
  mutable parent : int;
  mutable children : int list;
  mutable wire_class : int;
  mutable geom_len : int;
  mutable snake : int;
  mutable bend : Segment.L.config;
  mutable route : Point.t list;
}

type t = {
  tech : Tech.t;
  mutable nodes : node array;
  mutable n : int;
  mutable revision : int;
  mutable journal : journal option;
}

(* Undo log for speculative edits: one [jrecord] per [touch] site captures
   the old values of every field that site mutates. Rolling back replays
   the undo entries newest-first — O(edit), never a full-tree copy. At
   close time (rollback or commit) a redo log of the final values is
   captured so the same edit can be replayed onto content-identical
   replicas of the base tree. *)
and journal = {
  j_tree : t;
  j_base_rev : int;
  j_base_n : int;
  mutable j_undo : entry list; (* newest first *)
  mutable j_ops : int; (* recorded touch sites *)
  mutable j_value_only : bool; (* no structural edit recorded *)
  mutable j_touched : int list;
  mutable j_redo : entry list; (* captured at rollback/commit *)
  mutable j_closed : bool;
}

and entry =
  | E_kind of int * kind
  | E_parent of int * int
  | E_children of int * int list
  | E_wire_class of int * int
  | E_geom_len of int * int
  | E_snake of int * int
  | E_route of int * Point.t list
  | E_n of int
  | E_nodes of node array (* redo only: copies of appended nodes *)

let dummy_node =
  { id = -1; kind = Internal; pos = Point.origin; parent = -1; children = [];
    wire_class = 0; geom_len = 0; snake = 0; bend = Segment.L.XY; route = [] }

let create ~tech ~source_pos =
  let root =
    { dummy_node with id = 0; kind = Source; pos = source_pos }
  in
  let nodes = Array.make 64 dummy_node in
  nodes.(0) <- root;
  { tech; nodes; n = 1; revision = 0; journal = None }

let tech t = t.tech
let root _ = 0
let size t = t.n
let revision t = t.revision
let touch t = t.revision <- t.revision + 1

(* Record one mutation site in the active journal (no-op without one).
   Must be called exactly once per [touch] so the consistency invariant
   [revision = base_rev + ops] detects out-of-band mutations. *)
let jrecord t ?(structural = false) ~touched entries =
  match t.journal with
  | None -> ()
  | Some j ->
    j.j_undo <- List.rev_append entries j.j_undo;
    j.j_ops <- j.j_ops + 1;
    if structural then j.j_value_only <- false;
    j.j_touched <- List.rev_append touched j.j_touched

let node t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Tree.node: id %d" i);
  t.nodes.(i)

let wire_len nd = nd.geom_len + nd.snake
let wire_of t nd = t.tech.Tech.wires.(nd.wire_class)
let wire_cap t nd = Tech.Wire.cap (wire_of t nd) (wire_len nd)

let polyline_length pts =
  match pts with
  | [] | [ _ ] -> 0
  | first :: _ ->
    snd
      (List.fold_left
         (fun (prev, acc) p -> (p, acc + Point.dist prev p))
         (first, 0) pts)

let grow t =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) dummy_node in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end

let add_node t ~kind ~pos ~parent ?wire_class ?geom_len
    ?(bend = Segment.L.XY) () =
  if parent < 0 || parent >= t.n then
    invalid_arg (Printf.sprintf "Tree.add_node: invalid parent %d" parent);
  (match kind with
  | Source -> invalid_arg "Tree.add_node: only one source allowed"
  | Internal | Buffer _ | Sink _ -> ());
  grow t;
  let id = t.n in
  let wire_class =
    match wire_class with Some w -> w | None -> Tech.widest_wire t.tech
  in
  let geom_len =
    match geom_len with
    | Some l ->
      if l < Point.dist t.nodes.(parent).pos pos then
        invalid_arg "Tree.add_node: geom_len shorter than Manhattan distance";
      l
    | None -> Point.dist t.nodes.(parent).pos pos
  in
  let nd =
    { id; kind; pos; parent; children = []; wire_class; geom_len; snake = 0;
      bend; route = [] }
  in
  jrecord t ~structural:true ~touched:[ parent ]
    [ E_n t.n; E_children (parent, t.nodes.(parent).children) ];
  t.nodes.(id) <- nd;
  t.n <- t.n + 1;
  t.nodes.(parent).children <- t.nodes.(parent).children @ [ id ];
  touch t;
  id

let set_route t id pts =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.set_route: root has no wire";
  (match pts with
  | first :: _ :: _ ->
    let last = Listx.last ~what:"Tree.set_route: polyline" pts in
    if not (Point.equal first (node t nd.parent).pos && Point.equal last nd.pos)
    then invalid_arg "Tree.set_route: endpoints do not match parent/node"
  | _ -> invalid_arg "Tree.set_route: polyline needs at least two points");
  jrecord t ~touched:[ id ]
    [ E_route (id, nd.route); E_geom_len (id, nd.geom_len) ];
  nd.route <- pts;
  nd.geom_len <- polyline_length pts;
  touch t

(* Walk a polyline to the point at arc distance [d]. *)
let point_on_polyline pts d =
  let rec walk prev remaining = function
    | [] -> prev
    | p :: rest ->
      let step = Point.dist prev p in
      if remaining <= step then begin
        if step = 0 then p
        else
          let f a b = a + ((b - a) * remaining / step) in
          Point.make (f prev.Point.x p.Point.x) (f prev.Point.y p.Point.y)
      end
      else walk p (remaining - step) rest
  in
  match pts with
  | [] -> invalid_arg "point_on_polyline: empty"
  | first :: rest -> walk first d rest

let wire_polyline t id =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.wire_polyline: root";
  if nd.route <> [] then nd.route
  else
    let p = (node t nd.parent).pos in
    let b = Segment.L.bend nd.bend p nd.pos in
    if Point.equal b p || Point.equal b nd.pos then [ p; nd.pos ]
    else [ p; b; nd.pos ]

let point_along_wire t id d =
  let nd = node t id in
  if d < 0 || d > nd.geom_len then
    invalid_arg
      (Printf.sprintf "Tree.point_along_wire: %d outside [0,%d]" d nd.geom_len);
  point_on_polyline (wire_polyline t id) d

(* Split an explicit polyline at arc distance [d]; returns the two halves,
   both including the split point. *)
let split_polyline pts d =
  let split = point_on_polyline pts d in
  let rec walk prev remaining acc = function
    | [] -> (List.rev (split :: acc), [ split ])
    | p :: rest ->
      let step = Point.dist prev p in
      if remaining <= step then
        (List.rev (split :: acc), split :: p :: rest)
      else walk p (remaining - step) (p :: acc) rest
  in
  match pts with
  | [] -> invalid_arg "split_polyline: empty"
  | first :: rest ->
    let before, after = walk first d [ first ] rest in
    (* Drop duplicated points introduced when the split lands on a vertex. *)
    let dedup l =
      let rec go = function
        | a :: b :: rest when Point.equal a b -> go (b :: rest)
        | a :: rest -> a :: go rest
        | [] -> []
      in
      go l
    in
    (dedup before, dedup after)

let split_wire t id ~at =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.split_wire: root has no wire";
  if at < 0 || at > nd.geom_len then
    invalid_arg
      (Printf.sprintf "Tree.split_wire: %d outside [0,%d]" at nd.geom_len);
  let pts = wire_polyline t id in
  let before, after = split_polyline pts at in
  let split_pos = point_on_polyline pts at in
  let parent = nd.parent in
  (* Proportional snake split (integers; remainder goes downstream). *)
  let snake_up = if nd.geom_len = 0 then 0 else nd.snake * at / nd.geom_len in
  let snake_down = nd.snake - snake_up in
  grow t;
  let mid_id = t.n in
  let mid =
    { id = mid_id; kind = Internal; pos = split_pos; parent;
      children = [ id ]; wire_class = nd.wire_class;
      geom_len = polyline_length before; snake = snake_up; bend = nd.bend;
      route = (if List.length before > 2 then before else []) }
  in
  jrecord t ~structural:true ~touched:[ id; parent ]
    [ E_n t.n;
      E_children (parent, t.nodes.(parent).children);
      E_parent (id, nd.parent);
      E_geom_len (id, nd.geom_len);
      E_snake (id, nd.snake);
      E_route (id, nd.route) ];
  t.nodes.(mid_id) <- mid;
  t.n <- t.n + 1;
  (* Rewire: parent loses [id], gains [mid]. *)
  let pn = t.nodes.(parent) in
  pn.children <-
    List.map (fun c -> if c = id then mid_id else c) pn.children;
  nd.parent <- mid_id;
  nd.geom_len <- polyline_length after;
  nd.snake <- snake_down;
  nd.route <- (if List.length after > 2 then after else []);
  (* A two-point remainder is straight or an L with the original bend; keep
     the bend only if the segment is not axis-aligned. *)
  if List.length after <= 2 then nd.bend <- nd.bend;
  touch t;
  mid_id

let insert_buffer_on_wire t id ~at ~buf =
  let mid = split_wire t id ~at in
  let nd = node t mid in
  jrecord t ~structural:true ~touched:[ mid ] [ E_kind (mid, nd.kind) ];
  nd.kind <- Buffer buf;
  touch t;
  mid

let remove_buffer t id =
  let nd = node t id in
  match nd.kind with
  | Buffer _ ->
    jrecord t ~structural:true ~touched:[ id ] [ E_kind (id, nd.kind) ];
    nd.kind <- Internal;
    touch t
  | Source | Internal | Sink _ -> invalid_arg "Tree.remove_buffer: not a buffer"

let set_buffer t id buf =
  let nd = node t id in
  match nd.kind with
  | Internal | Buffer _ ->
    (* Rescaling an existing buffer keeps the stage partitioning (a value
       edit); turning an internal node into a buffer splits a stage. *)
    let structural = match nd.kind with Internal -> true | _ -> false in
    jrecord t ~structural ~touched:[ id ] [ E_kind (id, nd.kind) ];
    nd.kind <- Buffer buf;
    touch t
  | Source | Sink _ -> invalid_arg "Tree.set_buffer: source/sink node"

let set_wire_class t id wc =
  let nd = node t id in
  jrecord t ~touched:[ id ] [ E_wire_class (id, nd.wire_class) ];
  nd.wire_class <- wc;
  touch t

let set_snake t id snake =
  let nd = node t id in
  jrecord t ~touched:[ id ] [ E_snake (id, nd.snake) ];
  nd.snake <- snake;
  touch t

let set_geom_len t id len =
  let nd = node t id in
  jrecord t ~touched:[ id ] [ E_geom_len (id, nd.geom_len) ];
  nd.geom_len <- len;
  touch t

let collect t pred =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if pred t.nodes.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let sinks t = collect t (fun nd -> match nd.kind with Sink _ -> true | _ -> false)

let buffer_ids t =
  collect t (fun nd -> match nd.kind with Buffer _ -> true | _ -> false)

(* Reachable nodes only: after [detach], unreachable nodes are skipped by
   every traversal until [compact] rebuilds dense ids. *)
let topo_order t =
  let order = Array.make t.n 0 in
  let idx = ref 0 in
  let rec visit i =
    order.(!idx) <- i;
    incr idx;
    List.iter visit t.nodes.(i).children
  in
  visit 0;
  Array.sub order 0 !idx

let post_order t =
  let order = topo_order t in
  let n = Array.length order in
  Array.init n (fun i -> order.(n - 1 - i))

let iter t f =
  let order = topo_order t in
  Array.iter (fun i -> f t.nodes.(i)) order

let detach t id =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.detach: cannot detach the root";
  let pn = t.nodes.(nd.parent) in
  jrecord t ~structural:true ~touched:[ id; nd.parent ]
    [ E_children (nd.parent, pn.children); E_parent (id, nd.parent) ];
  pn.children <- List.filter (fun c -> c <> id) pn.children;
  nd.parent <- -1;
  touch t

let reparent t id ~new_parent =
  let nd = node t id in
  let np = node t new_parent in
  if nd.parent >= 0 then detach t id;
  jrecord t ~structural:true ~touched:[ id; new_parent ]
    [ E_parent (id, nd.parent);
      E_children (new_parent, np.children);
      E_route (id, nd.route);
      E_snake (id, nd.snake);
      E_geom_len (id, nd.geom_len) ];
  nd.parent <- new_parent;
  np.children <- np.children @ [ id ];
  nd.route <- [];
  nd.snake <- 0;
  nd.geom_len <- Point.dist np.pos nd.pos;
  touch t

let compact t =
  let order = topo_order t in
  let remap = Array.make t.n (-1) in
  Array.iteri (fun new_id old_id -> remap.(old_id) <- new_id) order;
  let nodes =
    Array.map
      (fun old_id ->
        let nd = t.nodes.(old_id) in
        {
          nd with
          id = remap.(old_id);
          parent = (if nd.parent < 0 then -1 else remap.(nd.parent));
          children = List.map (fun c -> remap.(c)) nd.children;
        })
      order
  in
  ( { tech = t.tech; nodes; n = Array.length nodes; revision = t.revision;
      journal = None },
    remap )

let inversions t =
  let inv = Array.make t.n 0 in
  let order = topo_order t in
  Array.iter
    (fun i ->
      let nd = t.nodes.(i) in
      let self = match nd.kind with Buffer b when Tech.Composite.inverting b -> 1 | _ -> 0 in
      inv.(i) <- (if nd.parent < 0 then 0 else inv.(nd.parent)) + self)
    order;
  inv

let subtree_sinks t id =
  let acc = ref [] in
  let rec visit i =
    let nd = t.nodes.(i) in
    (match nd.kind with Sink _ -> acc := i :: !acc | _ -> ());
    List.iter visit nd.children
  in
  visit id;
  List.rev !acc

let copy_node nd = { nd with children = nd.children }

(* Deep copies are banned from the IVC attempt hot path (journal rollback
   replaced them); the counter lets tests assert no copy slipped back in. *)
let copy_counter = Atomic.make 0
let copies () = Atomic.get copy_counter

let copy t =
  Atomic.incr copy_counter;
  let nodes = Array.map copy_node (Array.sub t.nodes 0 t.n) in
  let padded =
    if Array.length nodes = 0 then [| dummy_node |] else nodes
  in
  { tech = t.tech; nodes = padded; n = t.n; revision = t.revision;
    journal = None }

let assign ~dst ~src =
  if dst.journal <> None then
    invalid_arg "Tree.assign: destination has an active journal";
  dst.nodes <- Array.map copy_node (Array.sub src.nodes 0 src.n);
  dst.n <- src.n;
  touch dst

(* Abutment graft for the regional flow: [src]'s whole tree (minus its
   source) is appended onto [t], with [src]'s source node identified with
   the childless node [at] — which becomes a [Buffer buf], the regional
   root driver. Ids are assigned in [src] topological order, so the graft
   is deterministic; the returned map translates reachable [src] ids
   (map.(0) = [at], unreachable ids = -1). One [touch], no journal. *)
let graft t ~at ~buf ~src =
  if t.journal <> None then invalid_arg "Tree.graft: active journal";
  if src.journal <> None then invalid_arg "Tree.graft: source has a journal";
  if not (t.tech == src.tech) then
    invalid_arg "Tree.graft: technology mismatch";
  let tap = node t at in
  (match tap.kind with
  | Source -> invalid_arg "Tree.graft: cannot graft onto the source"
  | Internal | Buffer _ | Sink _ -> ());
  if tap.children <> [] then invalid_arg "Tree.graft: tap has children";
  let src_root = src.nodes.(0) in
  if not (Point.equal tap.pos src_root.pos) then
    invalid_arg "Tree.graft: tap and source positions differ";
  let order = topo_order src in
  let map = Array.make src.n (-1) in
  map.(0) <- at;
  (* First assign every id, then materialise the nodes: children lists
     reference ids that topological order has not visited yet. *)
  let next = ref t.n in
  Array.iter
    (fun i ->
      if i <> 0 then begin
        map.(i) <- !next;
        incr next
      end)
    order;
  Array.iter
    (fun i ->
      if i <> 0 then begin
        let sn = src.nodes.(i) in
        grow t;
        t.nodes.(t.n) <-
          { sn with
            id = map.(i);
            parent = map.(sn.parent);
            children = List.map (fun c -> map.(c)) sn.children };
        t.n <- t.n + 1
      end)
    order;
  tap.kind <- Buffer buf;
  tap.children <- List.map (fun c -> map.(c)) src_root.children;
  touch t;
  map

(* 64-bit FNV-1a over the full structural content (ids, topology, kinds,
   geometry, embeddings). Two trees with equal digests are — up to hash
   collision — identical inputs to every downstream analysis; the
   determinism tests compare parallel and serial speculation runs with it. *)
let digest t =
  let open Int64 in
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix x = h := mul (logxor !h x) prime in
  let mix_int i = mix (of_int i) in
  let mix_float f = mix (bits_of_float f) in
  let mix_point p =
    mix_int p.Point.x;
    mix_int p.Point.y
  in
  mix_int t.n;
  for i = 0 to t.n - 1 do
    let nd = t.nodes.(i) in
    (match nd.kind with
    | Source -> mix_int 1
    | Internal -> mix_int 2
    | Buffer b ->
      mix_int 3;
      mix_int b.Tech.Composite.count;
      mix_float (Tech.Composite.c_in b);
      mix_float (Tech.Composite.r_out b)
    | Sink s ->
      mix_int 4;
      mix_float s.cap;
      mix_int s.parity);
    mix_point nd.pos;
    mix_int nd.parent;
    List.iter mix_int nd.children;
    mix_int (-1);
    mix_int nd.wire_class;
    mix_int nd.geom_len;
    mix_int nd.snake;
    mix_int (match nd.bend with Segment.L.XY -> 0 | Segment.L.YX -> 1);
    List.iter mix_point nd.route;
    mix_int (-2)
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Canonical text serialization.

   Line-oriented and order-canonical: node lines in id order, then the
   non-empty children lists (children ORDER matters — [digest] hashes it),
   then the explicit route polylines. Floats are emitted as hex literals
   ([%h]) so a round-trip is bit-exact; labels and device names are
   percent-escaped so the format stays strictly space-separated. The
   technology is shared, never serialized (like [copy]): [of_string]
   takes the tech and resolves buffer devices by name against its
   library, falling back to reconstructing the device from the recorded
   electricals when the library changed underneath the snapshot. *)

let escape_token s =
  if s = "" then "%empty%"
  else begin
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '~' ->
          Buffer.add_char buf c
        | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  end

let bend_token = function Segment.L.XY -> "XY" | Segment.L.YX -> "YX"

let to_string t =
  let buf = Buffer.create (128 * t.n) in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "ctree 1\n";
  pf "n %d\n" t.n;
  for i = 0 to t.n - 1 do
    let nd = t.nodes.(i) in
    pf "node %d %d %d %d %d %d %d %s" i nd.pos.Point.x nd.pos.Point.y
      nd.parent nd.wire_class nd.geom_len nd.snake (bend_token nd.bend);
    match nd.kind with
    | Source -> pf " S\n"
    | Internal -> pf " I\n"
    | Buffer b ->
      let d = b.Tech.Composite.base in
      pf " B %d %s %h %h %h %h %h %h %d\n" b.Tech.Composite.count
        (escape_token d.Tech.Device.name)
        d.Tech.Device.c_in d.Tech.Device.c_out d.Tech.Device.r_up
        d.Tech.Device.r_down d.Tech.Device.d_intrinsic
        d.Tech.Device.slew_coeff
        (if d.Tech.Device.inverting then 1 else 0)
    | Sink s -> pf " K %d %h %s\n" s.parity s.cap (escape_token s.label)
  done;
  for i = 0 to t.n - 1 do
    let nd = t.nodes.(i) in
    if nd.children <> [] then begin
      pf "children %d" i;
      List.iter (fun c -> pf " %d" c) nd.children;
      pf "\n"
    end
  done;
  for i = 0 to t.n - 1 do
    let nd = t.nodes.(i) in
    if nd.route <> [] then begin
      pf "route %d" i;
      List.iter (fun p -> pf " %d %d" p.Point.x p.Point.y) nd.route;
      pf "\n"
    end
  done;
  Buffer.contents buf

exception Parse_error of string

let of_string ~tech text =
  let failf lineno fmt =
    Printf.ksprintf
      (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" lineno m)))
      fmt
  in
  let int_ lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> failf lineno "not an integer: %S" s
  in
  let float_ lineno s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> failf lineno "not a number: %S" s
  in
  let unescape lineno s =
    if s = "%empty%" then ""
    else begin
      let buf = Buffer.create (String.length s) in
      let n = String.length s in
      let i = ref 0 in
      while !i < n do
        if s.[!i] = '%' then begin
          if !i + 2 >= n then failf lineno "truncated escape in %S" s;
          (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
          | Some code when code >= 0 && code < 256 ->
            Buffer.add_char buf (Char.chr code)
          | _ -> failf lineno "bad escape in %S" s);
          i := !i + 3
        end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      Buffer.contents buf
    end
  in
  let resolve_device lineno ~name ~c_in ~c_out ~r_up ~r_down ~d_intrinsic
      ~slew_coeff ~inverting =
    if
      Float.is_nan c_in || Float.is_nan c_out || Float.is_nan r_up
      || Float.is_nan r_down || Float.is_nan d_intrinsic
      || Float.is_nan slew_coeff
    then failf lineno "non-finite device electricals for %S" name;
    let matches (d : Tech.Device.t) =
      d.Tech.Device.name = name
      && d.Tech.Device.c_in = c_in
      && d.Tech.Device.c_out = c_out
      && d.Tech.Device.r_up = r_up
      && d.Tech.Device.r_down = r_down
      && d.Tech.Device.d_intrinsic = d_intrinsic
      && d.Tech.Device.slew_coeff = slew_coeff
      && d.Tech.Device.inverting = inverting
    in
    match List.find_opt matches tech.Tech.devices with
    | Some d -> d
    | None ->
      Tech.Device.make ~name ~c_in ~c_out ~r_up ~r_down ~d_intrinsic
        ~slew_coeff ~inverting ()
  in
  try
    let header = ref false in
    let n = ref (-1) in
    let nodes = ref [||] in
    let get_slot lineno id =
      if !n < 0 then failf lineno "directive before the n line";
      if id < 0 || id >= !n then failf lineno "node id %d out of range" id;
      id
    in
    let defined lineno id =
      match !nodes.(get_slot lineno id) with
      | Some nd -> nd
      | None -> failf lineno "node %d not defined yet" id
    in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line =
          let l = String.length line in
          if l > 0 && line.[l - 1] = '\r' then String.sub line 0 (l - 1)
          else line
        in
        let tokens =
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        in
        match tokens with
        | [] -> ()
        | "ctree" :: rest ->
          if !header then failf lineno "duplicate header";
          (match rest with
          | [ "1" ] -> header := true
          | _ -> failf lineno "unsupported ctree version")
        | [ "n"; c ] ->
          if not !header then failf lineno "n before the ctree header";
          if !n >= 0 then failf lineno "duplicate n line";
          let c = int_ lineno c in
          if c < 1 then failf lineno "node count %d < 1" c;
          n := c;
          nodes := Array.make c None
        | "node" :: id :: x :: y :: parent :: wc :: geom :: snake :: bend
          :: kind ->
          let id = get_slot lineno (int_ lineno id) in
          if !nodes.(id) <> None then failf lineno "duplicate node %d" id;
          let bend =
            match bend with
            | "XY" -> Segment.L.XY
            | "YX" -> Segment.L.YX
            | b -> failf lineno "unknown bend %S" b
          in
          let kind =
            match kind with
            | [ "S" ] -> Source
            | [ "I" ] -> Internal
            | [ "B"; count; name; cin; cout; rup; rdown; dint; slew; inv ]
              ->
              let count = int_ lineno count in
              if count < 1 then failf lineno "buffer count %d < 1" count;
              let inverting =
                match inv with
                | "1" -> true
                | "0" -> false
                | s -> failf lineno "bad inverting flag %S" s
              in
              let dev =
                resolve_device lineno ~name:(unescape lineno name)
                  ~c_in:(float_ lineno cin) ~c_out:(float_ lineno cout)
                  ~r_up:(float_ lineno rup) ~r_down:(float_ lineno rdown)
                  ~d_intrinsic:(float_ lineno dint)
                  ~slew_coeff:(float_ lineno slew) ~inverting
              in
              Buffer (Tech.Composite.make dev count)
            | [ "K"; parity; cap; label ] ->
              Sink
                { cap = float_ lineno cap; parity = int_ lineno parity;
                  label = unescape lineno label }
            | _ -> failf lineno "malformed node kind"
          in
          !nodes.(id) <-
            Some
              { id; kind; pos = Point.make (int_ lineno x) (int_ lineno y);
                parent = int_ lineno parent;
                children = []; wire_class = int_ lineno wc;
                geom_len = int_ lineno geom; snake = int_ lineno snake;
                bend; route = [] }
        | "children" :: id :: (_ :: _ as rest) ->
          let nd = defined lineno (int_ lineno id) in
          if nd.children <> [] then
            failf lineno "duplicate children line for node %d" nd.id;
          nd.children <- List.map (fun c -> int_ lineno c) rest
        | "route" :: id :: (_ :: _ as coords) ->
          let nd = defined lineno (int_ lineno id) in
          if nd.route <> [] then
            failf lineno "duplicate route line for node %d" nd.id;
          let rec pairs = function
            | [] -> []
            | [ _ ] -> failf lineno "odd coordinate count in route"
            | x :: y :: rest ->
              Point.make (int_ lineno x) (int_ lineno y) :: pairs rest
          in
          let pts = pairs coords in
          if List.length pts < 2 then
            failf lineno "route needs at least two points";
          nd.route <- pts
        | d :: _ -> failf lineno "unknown directive %S" d)
      (String.split_on_char '\n' text);
    if not !header then raise (Parse_error "missing ctree header");
    if !n < 0 then raise (Parse_error "missing n line");
    let arr =
      Array.mapi
        (fun i nd ->
          match nd with
          | Some nd -> nd
          | None -> raise (Parse_error (Printf.sprintf "node %d missing" i)))
        !nodes
    in
    let count = !n in
    let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
    Array.iteri
      (fun i nd ->
        (match nd.kind with
        | Source ->
          if i <> 0 then fail "source at non-root node %d" i;
          if nd.parent <> -1 then fail "root node has parent %d" nd.parent
        | Internal | Buffer _ | Sink _ ->
          if i = 0 then fail "root node is not the source");
        if nd.parent < -1 || nd.parent >= count then
          fail "node %d has out-of-range parent %d" i nd.parent;
        if nd.parent = i then fail "node %d is its own parent" i;
        if nd.wire_class < 0
           || nd.wire_class >= Array.length tech.Tech.wires
        then fail "node %d has invalid wire class %d" i nd.wire_class;
        List.iter
          (fun c ->
            if c < 0 || c >= count then
              fail "node %d has out-of-range child %d" i c
            else if arr.(c).parent <> i then
              fail "child %d of node %d has parent %d" c i arr.(c).parent)
          nd.children)
      arr;
    Array.iteri
      (fun i nd ->
        if nd.parent >= 0 then begin
          let occurrences =
            List.fold_left
              (fun acc c -> if c = i then acc + 1 else acc)
              0
              arr.(nd.parent).children
          in
          if occurrences <> 1 then
            fail "node %d appears %d times in the children of its parent %d"
              i occurrences nd.parent
        end)
      arr;
    Ok { tech; nodes = arr; n = count; revision = 0; journal = None }
  with Parse_error m -> Error m

module Journal = struct
  let start tree =
    (match tree.journal with
    | Some _ -> invalid_arg "Tree.Journal.start: a journal is already active"
    | None -> ());
    let j =
      { j_tree = tree; j_base_rev = tree.revision; j_base_n = tree.n;
        j_undo = []; j_ops = 0; j_value_only = true; j_touched = [];
        j_redo = []; j_closed = false }
    in
    tree.journal <- Some j;
    j

  let base_revision j = j.j_base_rev
  let ops j = j.j_ops
  let value_only j = j.j_value_only
  let touched j = List.sort_uniq compare j.j_touched

  (* Every mutation since [start] went through a journaled mutator: each
     one bumped [revision] exactly once and recorded exactly one op.
     Direct field writes or bare [touch] calls break the equality — such
     a journal must not be rolled back (the undo log is incomplete) and
     its touched set must not be trusted as a dirty hint. *)
  let consistent j = j.j_tree.revision = j.j_base_rev + j.j_ops

  let apply_undo t = function
    | E_kind (i, k) -> t.nodes.(i).kind <- k
    | E_parent (i, p) -> t.nodes.(i).parent <- p
    | E_children (i, c) -> t.nodes.(i).children <- c
    | E_wire_class (i, w) -> t.nodes.(i).wire_class <- w
    | E_geom_len (i, l) -> t.nodes.(i).geom_len <- l
    | E_snake (i, s) -> t.nodes.(i).snake <- s
    | E_route (i, r) -> t.nodes.(i).route <- r
    | E_n n -> t.n <- n
    | E_nodes _ -> ()

  (* Final values for every (node, field) the journal touched, plus copies
     of appended nodes — enough to replay the net edit onto any tree that
     is content-identical to the base state. *)
  let capture_redo j =
    let t = j.j_tree in
    let seen = Hashtbl.create 16 in
    let redo = ref [] in
    List.iter
      (fun e ->
        let key =
          match e with
          | E_kind (i, _) -> Some (0, i)
          | E_parent (i, _) -> Some (1, i)
          | E_children (i, _) -> Some (2, i)
          | E_wire_class (i, _) -> Some (3, i)
          | E_geom_len (i, _) -> Some (4, i)
          | E_snake (i, _) -> Some (5, i)
          | E_route (i, _) -> Some (6, i)
          | E_n _ -> Some (7, 0)
          | E_nodes _ -> None
        in
        match key with
        | None -> ()
        | Some k ->
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            let cur =
              match e with
              | E_kind (i, _) -> E_kind (i, t.nodes.(i).kind)
              | E_parent (i, _) -> E_parent (i, t.nodes.(i).parent)
              | E_children (i, _) -> E_children (i, t.nodes.(i).children)
              | E_wire_class (i, _) -> E_wire_class (i, t.nodes.(i).wire_class)
              | E_geom_len (i, _) -> E_geom_len (i, t.nodes.(i).geom_len)
              | E_snake (i, _) -> E_snake (i, t.nodes.(i).snake)
              | E_route (i, _) -> E_route (i, t.nodes.(i).route)
              | E_n _ -> E_n t.n
              | E_nodes _ -> assert false
            in
            redo := cur :: !redo
          end)
      j.j_undo;
    if t.n > j.j_base_n then
      redo :=
        E_nodes
          (Array.map copy_node
             (Array.sub t.nodes j.j_base_n (t.n - j.j_base_n)))
        :: !redo;
    !redo

  let detach_journal j =
    (match j.j_tree.journal with
    | Some j' when j' == j -> j.j_tree.journal <- None
    | _ -> ());
    j.j_closed <- true

  let rollback j =
    if j.j_closed then invalid_arg "Tree.Journal.rollback: journal closed";
    let t = j.j_tree in
    if not (consistent j) then begin
      detach_journal j;
      invalid_arg "Tree.Journal.rollback: tree mutated outside the journal"
    end;
    j.j_redo <- capture_redo j;
    List.iter (apply_undo t) j.j_undo;
    detach_journal j;
    (* Bump, never restore: the same tree object must not revisit an old
       revision number after intervening content changes, or revision-keyed
       memos in the incremental sessions could hit falsely. *)
    touch t

  let commit j =
    if j.j_closed then invalid_arg "Tree.Journal.commit: journal closed";
    j.j_redo <- capture_redo j;
    detach_journal j

  let abandon j = detach_journal j

  let replay j ~onto =
    if not j.j_closed then
      invalid_arg "Tree.Journal.replay: commit or roll back first";
    if onto.journal <> None then
      invalid_arg "Tree.Journal.replay: target has an active journal";
    if onto.n <> j.j_base_n then
      invalid_arg "Tree.Journal.replay: target size differs from base";
    List.iter
      (fun e ->
        match e with
        | E_nodes nodes ->
          Array.iter
            (fun nd ->
              grow onto;
              onto.nodes.(onto.n) <- copy_node nd;
              onto.n <- onto.n + 1)
            nodes
        | e -> apply_undo onto e)
      j.j_redo;
    touch onto
end
