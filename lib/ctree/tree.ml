open Geometry

type sink = { cap : float; parity : int; label : string }

type kind =
  | Source
  | Internal
  | Buffer of Tech.Composite.t
  | Sink of sink

type node = {
  id : int;
  mutable kind : kind;
  mutable pos : Point.t;
  mutable parent : int;
  mutable children : int list;
  mutable wire_class : int;
  mutable geom_len : int;
  mutable snake : int;
  mutable bend : Segment.L.config;
  mutable route : Point.t list;
}

type t = {
  tech : Tech.t;
  mutable nodes : node array;
  mutable n : int;
  mutable revision : int;
}

let dummy_node =
  { id = -1; kind = Internal; pos = Point.origin; parent = -1; children = [];
    wire_class = 0; geom_len = 0; snake = 0; bend = Segment.L.XY; route = [] }

let create ~tech ~source_pos =
  let root =
    { dummy_node with id = 0; kind = Source; pos = source_pos }
  in
  let nodes = Array.make 64 dummy_node in
  nodes.(0) <- root;
  { tech; nodes; n = 1; revision = 0 }

let tech t = t.tech
let root _ = 0
let size t = t.n
let revision t = t.revision
let touch t = t.revision <- t.revision + 1

let node t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Tree.node: id %d" i);
  t.nodes.(i)

let wire_len nd = nd.geom_len + nd.snake
let wire_of t nd = t.tech.Tech.wires.(nd.wire_class)
let wire_cap t nd = Tech.Wire.cap (wire_of t nd) (wire_len nd)

let polyline_length pts =
  match pts with
  | [] | [ _ ] -> 0
  | first :: _ ->
    snd
      (List.fold_left
         (fun (prev, acc) p -> (p, acc + Point.dist prev p))
         (first, 0) pts)

let grow t =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) dummy_node in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end

let add_node t ~kind ~pos ~parent ?wire_class ?geom_len
    ?(bend = Segment.L.XY) () =
  if parent < 0 || parent >= t.n then
    invalid_arg (Printf.sprintf "Tree.add_node: invalid parent %d" parent);
  (match kind with
  | Source -> invalid_arg "Tree.add_node: only one source allowed"
  | Internal | Buffer _ | Sink _ -> ());
  grow t;
  let id = t.n in
  let wire_class =
    match wire_class with Some w -> w | None -> Tech.widest_wire t.tech
  in
  let geom_len =
    match geom_len with
    | Some l ->
      if l < Point.dist t.nodes.(parent).pos pos then
        invalid_arg "Tree.add_node: geom_len shorter than Manhattan distance";
      l
    | None -> Point.dist t.nodes.(parent).pos pos
  in
  let nd =
    { id; kind; pos; parent; children = []; wire_class; geom_len; snake = 0;
      bend; route = [] }
  in
  t.nodes.(id) <- nd;
  t.n <- t.n + 1;
  t.nodes.(parent).children <- t.nodes.(parent).children @ [ id ];
  touch t;
  id

let set_route t id pts =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.set_route: root has no wire";
  (match pts with
  | first :: _ :: _ ->
    let last = Listx.last ~what:"Tree.set_route: polyline" pts in
    if not (Point.equal first (node t nd.parent).pos && Point.equal last nd.pos)
    then invalid_arg "Tree.set_route: endpoints do not match parent/node"
  | _ -> invalid_arg "Tree.set_route: polyline needs at least two points");
  nd.route <- pts;
  nd.geom_len <- polyline_length pts;
  touch t

(* Walk a polyline to the point at arc distance [d]. *)
let point_on_polyline pts d =
  let rec walk prev remaining = function
    | [] -> prev
    | p :: rest ->
      let step = Point.dist prev p in
      if remaining <= step then begin
        if step = 0 then p
        else
          let f a b = a + ((b - a) * remaining / step) in
          Point.make (f prev.Point.x p.Point.x) (f prev.Point.y p.Point.y)
      end
      else walk p (remaining - step) rest
  in
  match pts with
  | [] -> invalid_arg "point_on_polyline: empty"
  | first :: rest -> walk first d rest

let wire_polyline t id =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.wire_polyline: root";
  if nd.route <> [] then nd.route
  else
    let p = (node t nd.parent).pos in
    let b = Segment.L.bend nd.bend p nd.pos in
    if Point.equal b p || Point.equal b nd.pos then [ p; nd.pos ]
    else [ p; b; nd.pos ]

let point_along_wire t id d =
  let nd = node t id in
  if d < 0 || d > nd.geom_len then
    invalid_arg
      (Printf.sprintf "Tree.point_along_wire: %d outside [0,%d]" d nd.geom_len);
  point_on_polyline (wire_polyline t id) d

(* Split an explicit polyline at arc distance [d]; returns the two halves,
   both including the split point. *)
let split_polyline pts d =
  let split = point_on_polyline pts d in
  let rec walk prev remaining acc = function
    | [] -> (List.rev (split :: acc), [ split ])
    | p :: rest ->
      let step = Point.dist prev p in
      if remaining <= step then
        (List.rev (split :: acc), split :: p :: rest)
      else walk p (remaining - step) (p :: acc) rest
  in
  match pts with
  | [] -> invalid_arg "split_polyline: empty"
  | first :: rest ->
    let before, after = walk first d [ first ] rest in
    (* Drop duplicated points introduced when the split lands on a vertex. *)
    let dedup l =
      let rec go = function
        | a :: b :: rest when Point.equal a b -> go (b :: rest)
        | a :: rest -> a :: go rest
        | [] -> []
      in
      go l
    in
    (dedup before, dedup after)

let split_wire t id ~at =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.split_wire: root has no wire";
  if at < 0 || at > nd.geom_len then
    invalid_arg
      (Printf.sprintf "Tree.split_wire: %d outside [0,%d]" at nd.geom_len);
  let pts = wire_polyline t id in
  let before, after = split_polyline pts at in
  let split_pos = point_on_polyline pts at in
  let parent = nd.parent in
  (* Proportional snake split (integers; remainder goes downstream). *)
  let snake_up = if nd.geom_len = 0 then 0 else nd.snake * at / nd.geom_len in
  let snake_down = nd.snake - snake_up in
  grow t;
  let mid_id = t.n in
  let mid =
    { id = mid_id; kind = Internal; pos = split_pos; parent;
      children = [ id ]; wire_class = nd.wire_class;
      geom_len = polyline_length before; snake = snake_up; bend = nd.bend;
      route = (if List.length before > 2 then before else []) }
  in
  t.nodes.(mid_id) <- mid;
  t.n <- t.n + 1;
  (* Rewire: parent loses [id], gains [mid]. *)
  let pn = t.nodes.(parent) in
  pn.children <-
    List.map (fun c -> if c = id then mid_id else c) pn.children;
  nd.parent <- mid_id;
  nd.geom_len <- polyline_length after;
  nd.snake <- snake_down;
  nd.route <- (if List.length after > 2 then after else []);
  (* A two-point remainder is straight or an L with the original bend; keep
     the bend only if the segment is not axis-aligned. *)
  if List.length after <= 2 then nd.bend <- nd.bend;
  touch t;
  mid_id

let insert_buffer_on_wire t id ~at ~buf =
  let mid = split_wire t id ~at in
  (node t mid).kind <- Buffer buf;
  touch t;
  mid

let remove_buffer t id =
  let nd = node t id in
  match nd.kind with
  | Buffer _ ->
    nd.kind <- Internal;
    touch t
  | Source | Internal | Sink _ -> invalid_arg "Tree.remove_buffer: not a buffer"

let set_buffer t id buf =
  let nd = node t id in
  match nd.kind with
  | Internal | Buffer _ ->
    nd.kind <- Buffer buf;
    touch t
  | Source | Sink _ -> invalid_arg "Tree.set_buffer: source/sink node"

let set_wire_class t id wc =
  (node t id).wire_class <- wc;
  touch t

let set_snake t id snake =
  (node t id).snake <- snake;
  touch t

let set_geom_len t id len =
  (node t id).geom_len <- len;
  touch t

let collect t pred =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if pred t.nodes.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let sinks t = collect t (fun nd -> match nd.kind with Sink _ -> true | _ -> false)

let buffer_ids t =
  collect t (fun nd -> match nd.kind with Buffer _ -> true | _ -> false)

(* Reachable nodes only: after [detach], unreachable nodes are skipped by
   every traversal until [compact] rebuilds dense ids. *)
let topo_order t =
  let order = Array.make t.n 0 in
  let idx = ref 0 in
  let rec visit i =
    order.(!idx) <- i;
    incr idx;
    List.iter visit t.nodes.(i).children
  in
  visit 0;
  Array.sub order 0 !idx

let post_order t =
  let order = topo_order t in
  let n = Array.length order in
  Array.init n (fun i -> order.(n - 1 - i))

let iter t f =
  let order = topo_order t in
  Array.iter (fun i -> f t.nodes.(i)) order

let detach t id =
  let nd = node t id in
  if nd.parent < 0 then invalid_arg "Tree.detach: cannot detach the root";
  let pn = t.nodes.(nd.parent) in
  pn.children <- List.filter (fun c -> c <> id) pn.children;
  nd.parent <- -1;
  touch t

let reparent t id ~new_parent =
  let nd = node t id in
  let np = node t new_parent in
  if nd.parent >= 0 then detach t id;
  nd.parent <- new_parent;
  np.children <- np.children @ [ id ];
  nd.route <- [];
  nd.snake <- 0;
  nd.geom_len <- Point.dist np.pos nd.pos;
  touch t

let compact t =
  let order = topo_order t in
  let remap = Array.make t.n (-1) in
  Array.iteri (fun new_id old_id -> remap.(old_id) <- new_id) order;
  let nodes =
    Array.map
      (fun old_id ->
        let nd = t.nodes.(old_id) in
        {
          nd with
          id = remap.(old_id);
          parent = (if nd.parent < 0 then -1 else remap.(nd.parent));
          children = List.map (fun c -> remap.(c)) nd.children;
        })
      order
  in
  ({ tech = t.tech; nodes; n = Array.length nodes; revision = t.revision }, remap)

let inversions t =
  let inv = Array.make t.n 0 in
  let order = topo_order t in
  Array.iter
    (fun i ->
      let nd = t.nodes.(i) in
      let self = match nd.kind with Buffer b when Tech.Composite.inverting b -> 1 | _ -> 0 in
      inv.(i) <- (if nd.parent < 0 then 0 else inv.(nd.parent)) + self)
    order;
  inv

let subtree_sinks t id =
  let acc = ref [] in
  let rec visit i =
    let nd = t.nodes.(i) in
    (match nd.kind with Sink _ -> acc := i :: !acc | _ -> ());
    List.iter visit nd.children
  in
  visit id;
  List.rev !acc

let copy_node nd = { nd with children = nd.children }

let copy t =
  let nodes = Array.map copy_node (Array.sub t.nodes 0 t.n) in
  let padded =
    if Array.length nodes = 0 then [| dummy_node |] else nodes
  in
  { tech = t.tech; nodes = padded; n = t.n; revision = t.revision }

let assign ~dst ~src =
  dst.nodes <- Array.map copy_node (Array.sub src.nodes 0 src.n);
  dst.n <- src.n;
  touch dst
