(** Aggregate metrics of a clock tree: wirelength, capacitance breakdown,
    buffer counts. The [total_cap] field is the capacitance the contest's
    power limit constrains: wire + sink + buffer input capacitance. *)

type t = {
  wirelength : int;        (** electrical wirelength (incl. snaking), nm *)
  geom_wirelength : int;   (** routed geometric wirelength, nm *)
  snake_total : int;       (** total snaked extra length, nm *)
  wire_cap : float;        (** fF *)
  sink_cap : float;        (** fF *)
  buffer_in_cap : float;   (** fF *)
  buffer_out_cap : float;  (** fF *)
  buffer_count : int;
  buffer_devices : int;    (** parallel device count summed over buffers *)
  sink_count : int;
  total_cap : float;       (** wire + sink + buffer input cap, fF *)
}

val compute : Tree.t -> t

(** [cap_headroom tree] = cap limit minus [total_cap] (infinite when the
    technology has no limit). *)
val cap_headroom : Tree.t -> float

val pp : Format.formatter -> t -> unit
