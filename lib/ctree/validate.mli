(** Structural invariant checking for clock trees. Used by tests and after
    every destructive optimization step in debug builds. *)

(** All violated invariants as human-readable messages; [[]] means the tree
    is well-formed. Checked invariants:
    - parent/children cross-consistency and acyclicity from the root
    - exactly one source, at the root
    - geometric lengths match embeddings (route polylines, L-bends)
    - snake lengths are non-negative
    - wire classes are valid for the technology
    - explicit routes start/end at the right positions
    - sinks are leaves *)
val check : Tree.t -> string list

(** @raise Failure with all messages when the tree is malformed. *)
val check_exn : Tree.t -> unit
