type t = {
  wirelength : int;
  geom_wirelength : int;
  snake_total : int;
  wire_cap : float;
  sink_cap : float;
  buffer_in_cap : float;
  buffer_out_cap : float;
  buffer_count : int;
  buffer_devices : int;
  sink_count : int;
  total_cap : float;
}

let compute tree =
  let wirelength = ref 0 and geom = ref 0 and snake = ref 0 in
  let wire_cap = ref 0. and sink_cap = ref 0. in
  let bin = ref 0. and bout = ref 0. in
  let bcount = ref 0 and bdevices = ref 0 and scount = ref 0 in
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 then begin
        wirelength := !wirelength + Tree.wire_len nd;
        geom := !geom + nd.Tree.geom_len;
        snake := !snake + nd.Tree.snake;
        wire_cap := !wire_cap +. Tree.wire_cap tree nd
      end;
      match nd.Tree.kind with
      | Tree.Sink s ->
        incr scount;
        sink_cap := !sink_cap +. s.Tree.cap
      | Tree.Buffer b ->
        incr bcount;
        bdevices := !bdevices + b.Tech.Composite.count;
        bin := !bin +. Tech.Composite.c_in b;
        bout := !bout +. Tech.Composite.c_out b
      | Tree.Source | Tree.Internal -> ());
  {
    wirelength = !wirelength;
    geom_wirelength = !geom;
    snake_total = !snake;
    wire_cap = !wire_cap;
    sink_cap = !sink_cap;
    buffer_in_cap = !bin;
    buffer_out_cap = !bout;
    buffer_count = !bcount;
    buffer_devices = !bdevices;
    sink_count = !scount;
    total_cap = !wire_cap +. !sink_cap +. !bin;
  }

let cap_headroom tree =
  let stats = compute tree in
  (Tree.tech tree).Tech.cap_limit -. stats.total_cap

let pp ppf s =
  Format.fprintf ppf
    "wl=%.2fmm (snake %.2fmm) cap=%.1fpF (wire %.1f sink %.1f bufin %.1f) \
     buffers=%d sinks=%d"
    (float_of_int s.wirelength /. 1.e6)
    (float_of_int s.snake_total /. 1.e6)
    (s.total_cap /. 1000.) (s.wire_cap /. 1000.) (s.sink_cap /. 1000.)
    (s.buffer_in_cap /. 1000.) s.buffer_count s.sink_count
