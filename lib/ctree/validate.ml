open Geometry

let check tree =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let n = Tree.size tree in
  let tech = Tree.tech tree in
  let seen = Array.make n false in
  let rec visit i depth =
    if depth > n then err "cycle detected at node %d" i
    else begin
      if seen.(i) then err "node %d reached twice" i;
      seen.(i) <- true;
      let nd = Tree.node tree i in
      List.iter
        (fun c ->
          if c < 0 || c >= n then err "node %d has invalid child %d" i c
          else begin
            let cn = Tree.node tree c in
            if cn.Tree.parent <> i then
              err "child %d of %d has parent %d" c i cn.Tree.parent;
            visit c (depth + 1)
          end)
        nd.Tree.children
    end
  in
  visit (Tree.root tree) 0;
  for i = 0 to n - 1 do
    if not seen.(i) then err "node %d unreachable from root" i
  done;
  for i = 0 to n - 1 do
    let nd = Tree.node tree i in
    (match nd.Tree.kind with
    | Tree.Source ->
      if i <> Tree.root tree then err "source at non-root node %d" i
    | Tree.Sink _ ->
      if nd.Tree.children <> [] then err "sink %d is not a leaf" i
    | Tree.Internal | Tree.Buffer _ -> ());
    if nd.Tree.snake < 0 then err "node %d has negative snake" i;
    if nd.Tree.wire_class < 0 || nd.Tree.wire_class >= Array.length tech.Tech.wires
    then err "node %d has invalid wire class %d" i nd.Tree.wire_class;
    if nd.Tree.parent >= 0 then begin
      let parent_pos = (Tree.node tree nd.Tree.parent).Tree.pos in
      match nd.Tree.route with
      | [] ->
        if nd.Tree.geom_len < Point.dist parent_pos nd.Tree.pos then
          err "node %d: geom_len %d < Manhattan distance %d" i nd.Tree.geom_len
            (Point.dist parent_pos nd.Tree.pos)
      | route ->
        let first = List.hd route in
        let last = Listx.last ~what:"Validate: route" route in
        if not (Point.equal first parent_pos) then
          err "node %d: route does not start at parent position" i;
        if not (Point.equal last nd.Tree.pos) then
          err "node %d: route does not end at node position" i;
        let len =
          match route with
          | [] -> 0
          | f :: _ ->
            snd (List.fold_left (fun (p, a) q -> (q, a + Point.dist p q)) (f, 0) route)
        in
        if len <> nd.Tree.geom_len then
          err "node %d: geom_len %d but route length %d" i nd.Tree.geom_len len
    end
  done;
  List.rev !errors

let check_exn tree =
  match check tree with
  | [] -> ()
  | errors -> failwith ("Ctree.Validate: " ^ String.concat "; " errors)
