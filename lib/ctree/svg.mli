(** SVG rendering of clock trees in the style of the paper's Figure 3:
    sinks drawn as crosses, buffers as blue rectangles, L-shaped wires
    drawn as straight "diagonal" lines to reduce clutter, and wires
    coloured by a red–green gradient reflecting slack. *)

(** [gradient ~lo ~hi v] is an [#rrggbb] colour from red ([v <= lo], no
    slack) to green ([v >= hi], ample slack). *)
val gradient : lo:float -> hi:float -> float -> string

(** [render tree ~edge_color] renders the tree as a complete SVG document.
    [edge_color] maps a node id to the colour of its parent wire (default:
    dark grey). Obstacles, when given, are drawn as hatched grey boxes. *)
val render :
  ?edge_color:(int -> string) -> ?obstacles:Geometry.Rect.t list ->
  ?canvas:int -> Tree.t -> string

val write_file : string -> string -> unit
