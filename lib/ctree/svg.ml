open Geometry

let gradient ~lo ~hi v =
  let t =
    if hi <= lo then 1.
    else max 0. (min 1. ((v -. lo) /. (hi -. lo)))
  in
  let r = int_of_float (Float.round (220. *. (1. -. t))) in
  let g = int_of_float (Float.round (170. *. t)) in
  Printf.sprintf "#%02x%02x30" r g

let render ?(edge_color = fun _ -> "#555555") ?(obstacles = []) ?(canvas = 1000)
    tree =
  let buf = Buffer.create 65536 in
  (* Bounding box over node positions and obstacles. *)
  let minx = ref max_int and miny = ref max_int in
  let maxx = ref min_int and maxy = ref min_int in
  let see (p : Point.t) =
    minx := min !minx p.x; maxx := max !maxx p.x;
    miny := min !miny p.y; maxy := max !maxy p.y
  in
  Tree.iter tree (fun nd -> see nd.Tree.pos);
  List.iter
    (fun (r : Rect.t) ->
      see (Point.make r.lx r.ly);
      see (Point.make r.hx r.hy))
    obstacles;
  let w = max 1 (!maxx - !minx) and h = max 1 (!maxy - !miny) in
  let scale = float_of_int canvas /. float_of_int (max w h) in
  let sx x = (float_of_int (x - !minx) *. scale) +. 10. in
  (* SVG y grows downward; flip so the layout reads like the paper. *)
  let sy y = (float_of_int (!maxy - y) *. scale) +. 10. in
  let marker = max 2. (float_of_int canvas /. 250.) in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n<rect width=\"100%%\" height=\"100%%\" \
        fill=\"white\"/>\n"
       (canvas + 20) (canvas + 20) (canvas + 20) (canvas + 20));
  List.iter
    (fun (r : Rect.t) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
            fill=\"#dddddd\" stroke=\"#999999\"/>\n"
           (sx r.lx) (sy r.hy)
           (float_of_int (Rect.width r) *. scale)
           (float_of_int (Rect.height r) *. scale)))
    obstacles;
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 then begin
        let color = edge_color nd.Tree.id in
        match nd.Tree.route with
        | [] ->
          (* L-shapes as straight diagonals, per Fig. 3. *)
          let p = (Tree.node tree nd.Tree.parent).Tree.pos in
          Buffer.add_string buf
            (Printf.sprintf
               "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
                stroke=\"%s\" stroke-width=\"1\"/>\n"
               (sx p.x) (sy p.y) (sx nd.Tree.pos.Point.x)
               (sy nd.Tree.pos.Point.y) color)
        | route ->
          let pts =
            String.concat " "
              (List.map
                 (fun (p : Point.t) -> Printf.sprintf "%.1f,%.1f" (sx p.x) (sy p.y))
                 route)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
                stroke-width=\"1\"/>\n"
               pts color)
      end);
  Tree.iter tree (fun nd ->
      let x = sx nd.Tree.pos.Point.x and y = sy nd.Tree.pos.Point.y in
      match nd.Tree.kind with
      | Tree.Sink _ ->
        Buffer.add_string buf
          (Printf.sprintf
             "<path d=\"M %.1f %.1f L %.1f %.1f M %.1f %.1f L %.1f %.1f\" \
              stroke=\"#333333\" stroke-width=\"1\"/>\n"
             (x -. marker) (y -. marker) (x +. marker) (y +. marker)
             (x -. marker) (y +. marker) (x +. marker) (y -. marker))
      | Tree.Buffer _ ->
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
              fill=\"#3355cc\"/>\n"
             (x -. marker) (y -. marker) (2. *. marker) (2. *. marker))
      | Tree.Source ->
        Buffer.add_string buf
          (Printf.sprintf
             "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"#cc3333\"/>\n"
             x y (1.5 *. marker))
      | Tree.Internal -> ());
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
