(** Struct-of-arrays snapshot of a {!Tree} for the flat evaluation path.

    Topology lives in dense [parent]/[first_child]/[next_sibling] index
    arrays (sibling order preserves the tree's children-list order, so a
    chain walk visits children exactly as the boxed extraction does) and
    the electrical constants are pre-resolved from the technology into
    flat float64 {!Bigarray.Array1} buffers. [Analysis.Rcflat] compiles
    RC stages straight from these arrays.

    The snapshot carries the {!Tree.revision} it reflects. {!sync} is a
    no-op while the revision still matches, applies a touched-node patch
    when the caller passes the journal's touched set, and recompiles from
    scratch otherwise — so a stale arena can never be read silently as
    long as callers check {!in_sync} or go through {!sync}.

    All stored electricals are exactly the values the boxed accessors
    return ([Tech.Wire.res], [Tech.Composite.c_in], …): arithmetic done
    on them downstream is bit-identical to the boxed path's. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Node kind tags stored in {!kind}. *)
val k_source : int

val k_internal : int
val k_buffer : int
val k_sink : int

type t = private {
  tree : Tree.t;
  mutable revision : int;
  mutable n : int;
  mutable parent : int array;
  mutable first_child : int array;   (** -1 = leaf *)
  mutable next_sibling : int array;  (** -1 = last sibling *)
  mutable kind : int array;
  mutable len : int array;           (** electrical wire length, nm *)
  mutable xs : int array;
  mutable ys : int array;
  mutable inverting : int array;
  mutable wire_r : f64;              (** total parent-wire resistance, Ω *)
  mutable wire_c : f64;              (** total parent-wire capacitance, fF *)
  mutable tap_c : f64;               (** sink load / buffer input cap, fF *)
  mutable drv_c_out : f64;
  mutable drv_r_up : f64;
  mutable drv_r_down : f64;
  mutable drv_d_intr : f64;
  mutable drv_slew_c : f64;
}
(** The arrays are owned by the arena: treat them as read-only and do not
    retain them across {!sync} (a recompile may replace them). *)

val compile : Tree.t -> t
(** Snapshot the tree's current state. *)

val sync : ?touched:int list -> t -> unit
(** Re-synchronise with the tree. No-op when {!in_sync}. With [?touched]
    (the journal's touched node ids since the last sync) and an unchanged
    node count, only those nodes are patched — including their sibling
    chains, since a children-list edit always touches the parent. Any
    other case (size change, no hint) recompiles every node. *)

val in_sync : t -> bool
(** [revision arena = Tree.revision tree] — false means the arena is
    stale and must be {!sync}ed before use. *)

val revision : t -> int
val tree : t -> Tree.t
val size : t -> int
val root : t -> int
