(* Command-line interface to the Contango flow:

     contango generate <name|ti:N> -o bench.cts
     contango run bench.cts [--engine spice|arnoldi] [--svg out.svg]
     contango suite SPEC... [--timeout S] [--jobs N] [--baseline golden.json]
     contango pareto bench.cts [--jobs N]   (knob sweep -> Pareto front)
     contango eval bench.cts            (baseline greedy-CTS, for comparison)
     contango svg bench.cts -o tree.svg (initial tree only, slack-coloured)
     contango serve --socket /tmp/c.sock [--max-queue N] [--workers N]
     contango client --socket /tmp/c.sock run ti:200 [--timeout S]
*)

open Cmdliner
module Ev = Analysis.Evaluator

(* The engine knob also picks the Spice representation: [flat] streams
   the backward-Euler kernel over the flat arena pool, [boxed] (alias
   [spice]) keeps the boxed reference path. *)
let engine_conv =
  let parse = function
    | "spice" | "boxed" -> Ok (Ev.Spice, false)
    | "flat" -> Ok (Ev.Spice, true)
    | "arnoldi" -> Ok (Ev.Arnoldi, false)
    | "elmore" -> Ok (Ev.Elmore_model, false)
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  let print ppf = function
    | Ev.Spice, true -> Format.pp_print_string ppf "flat"
    | Ev.Spice, false -> Format.pp_print_string ppf "spice"
    | (Ev.Arnoldi, _) -> Format.pp_print_string ppf "arnoldi"
    | (Ev.Elmore_model, _) -> Format.pp_print_string ppf "elmore"
  in
  Arg.conv (parse, print)

(* Benchmark loading/parse problems are user errors with file:line
   diagnostics, not crashes — print them cleanly instead of dying with a
   backtrace. *)
let load_bench s =
  try Suite.Runner.load_bench s
  with Failure msg ->
    Printf.eprintf "contango: %s\n" msg;
    exit 2

let config_of ?second_pass_skew ?speculation ?probe_count ?size_probe_min_len
    ?snake_probe_min_len ?seg_len ?regions ?(regional = false) ?stitch_skew
    ?(surrogate = false) ?rank_top ~engine () =
  let c = Core.Config.default in
  (* [--regional] alone picks a sensible region count; an explicit
     [--regions] always wins. *)
  let c =
    match (regions, regional) with
    | Some r, _ -> { c with Core.Config.regions = r }
    | None, true -> { c with Core.Config.regions = 8 }
    | None, false -> c
  in
  let c =
    match stitch_skew with
    | Some s -> { c with Core.Config.stitch_skew_ps = s }
    | None -> c
  in
  let c =
    match engine with
    | Some (e, flat) -> { c with Core.Config.engine = e; flat }
    | None -> c
  in
  let c =
    match seg_len with
    | Some l -> { c with Core.Config.seg_len = l }
    | None -> c
  in
  let c =
    match second_pass_skew with
    | Some s -> { c with Core.Config.second_pass_skew_ps = s }
    | None -> c
  in
  let c =
    match speculation with
    | Some n -> { c with Core.Config.speculation = n }
    | None -> c
  in
  let c =
    match probe_count with
    | Some n -> { c with Core.Config.probe_count = n }
    | None -> c
  in
  let c =
    match size_probe_min_len with
    | Some n -> { c with Core.Config.size_probe_min_len = n }
    | None -> c
  in
  let c =
    match snake_probe_min_len with
    | Some n -> { c with Core.Config.snake_probe_min_len = n }
    | None -> c
  in
  let c = if surrogate then { c with Core.Config.surrogate = true } else c in
  match rank_top with
  | Some n -> { c with Core.Config.rank_top = n }
  | None -> c

(* Optimization-loop knobs shared by the run and suite commands. *)
let seg_len_arg =
  Arg.(value & opt (some int) None
       & info [ "seg-len" ] ~docv:"NM"
           ~doc:"RC segmentation granularity in nm (default 30000): wires \
                 are cut into lumped RC segments of at most this length \
                 for evaluation. Larger values trade accuracy for speed.")

let speculate_arg =
  Arg.(value & opt (some int) None
       & info [ "speculate" ] ~docv:"N"
           ~doc:"Speculative candidate-search width for the IVC loops: N>0 \
                 parallel lanes (1 = serial journaled search), 0 picks a \
                 width from the core count (default), -1 restores the \
                 legacy copy-based serial loop. Results are identical for \
                 every N >= 0; only wall-clock changes.")

let surrogate_arg =
  Arg.(value & flag
       & info [ "surrogate" ]
           ~doc:"Rank speculative candidates with the calibrated linear \
                 surrogate: once calibrated, only the top-R predicted \
                 candidates of each IVC round pay a full evaluation (a \
                 trust-radius mispredict guard falls back to the full \
                 set). Off (the default) reproduces the unranked search \
                 bit-identically; on keeps final quality within the IVC \
                 tolerance while cutting the evaluation count.")

let rank_top_arg =
  Arg.(value & opt (some int) None
       & info [ "rank-top" ] ~docv:"R"
           ~doc:"Top-R candidates that pay a full evaluation per \
                 surrogate-ranked round (0, the default, scales with the \
                 candidate count). Only read with $(b,--surrogate).")

let probe_count_arg =
  Arg.(value & opt (some int) None
       & info [ "probe-count" ] ~docv:"K"
           ~doc:"Calibration probes per wire-sizing/snaking estimator.")

let size_probe_min_len_arg =
  Arg.(value & opt (some int) None
       & info [ "size-probe-min-len" ] ~docv:"NM"
           ~doc:"Minimum parent-wire length for a wire-sizing probe site.")

let snake_probe_min_len_arg =
  Arg.(value & opt (some int) None
       & info [ "snake-probe-min-len" ] ~docv:"NM"
           ~doc:"Minimum parent-wire length for a snaking probe site.")

let regions_arg =
  Arg.(value & opt (some int) None
       & info [ "regions" ] ~docv:"N"
           ~doc:"Partition the sinks into N capacity-balanced regions, \
                 synthesize each region concurrently and stitch them under \
                 a latency-balanced top-level tree. 1 (the default) is the \
                 monolithic flow, bit-identical to not passing the flag.")

let regional_arg =
  Arg.(value & flag
       & info [ "regional" ]
           ~doc:"Shorthand for the regional flow with a default region \
                 count (8). An explicit $(b,--regions) takes precedence.")

let stitch_skew_arg =
  Arg.(value & opt (some float) None
       & info [ "stitch-skew" ] ~docv:"PS"
           ~doc:"Global skew (ps) below which the regional stitch polish \
                 loop stops (default 1.0). Only read when regions > 1.")

let write_slack_svg tree eval path =
  let slacks = Core.Slack.combined tree eval in
  let hi =
    Array.fold_left
      (fun acc v -> if Float.is_finite v then Float.max acc v else acc)
      0. slacks.Core.Slack.slow
  in
  let edge_color id =
    Ctree.Svg.gradient ~lo:0. ~hi (slacks.Core.Slack.slow.(id))
  in
  Ctree.Svg.write_file path (Ctree.Svg.render ~edge_color tree);
  Printf.printf "wrote %s\n" path

(* generate *)
let generate_cmd =
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:"Benchmark: an ISPD'09 name or ti:<sinks>.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run spec output =
    let b = load_bench spec in
    let path = Option.value output ~default:(b.Suite.Format_io.name ^ ".cts") in
    Suite.Format_io.write_file path b;
    Printf.printf "wrote %s (%d sinks, %d obstacles)\n" path
      (Array.length b.Suite.Format_io.sinks)
      (List.length b.Suite.Format_io.obstacles)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a benchmark file.")
    Term.(const run $ spec $ output)

(* run *)
let run_cmd =
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let engine =
    Arg.(value & opt (some engine_conv) None
         & info [ "engine" ] ~doc:"Evaluation engine: spice (boxed reference), flat (streaming flat-arena kernel), arnoldi, elmore.")
  in
  let svg = Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE") in
  let second_pass_skew =
    Arg.(value & opt (some float) None
         & info [ "second-pass-skew" ] ~docv:"PS"
             ~doc:"Nominal skew (ps) above which TWSZ/TWSN run a second \
                   pass. Use inf to disable the second pass, a negative \
                   value to force it.")
  in
  let checkpoints =
    Arg.(value & opt (some string) None
         & info [ "checkpoints" ] ~docv:"DIR"
             ~doc:"Write a verified checkpoint to $(docv) after every \
                   completed flow stage (atomic, checksummed).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"DIR"
             ~doc:"Resume from the latest verified checkpoint in $(docv), \
                   skipping completed stages, and keep checkpointing \
                   there. Runs from scratch when $(docv) has no loadable \
                   checkpoint.")
  in
  let run spec engine seg_len second_pass_skew speculation surrogate rank_top
      probe_count size_probe_min_len snake_probe_min_len regions regional
      stitch_skew checkpoints resume svg =
    let b = load_bench spec in
    let config =
      config_of ?second_pass_skew ?speculation ~surrogate ?rank_top
        ?probe_count ?size_probe_min_len ?snake_probe_min_len ?seg_len
        ?regions ~regional ?stitch_skew ~engine ()
    in
    let checkpoint_dir, resume_on =
      match resume with
      | Some dir -> (Some dir, true)
      | None -> (checkpoints, false)
    in
    let rr =
      Core.Flow.run_regional ~config ?checkpoint_dir ~resume:resume_on
        ~tech:b.Suite.Format_io.tech ~source:b.Suite.Format_io.source
        ~obstacles:b.Suite.Format_io.obstacles b.Suite.Format_io.sinks
    in
    let r = rr.Core.Flow.r_flow in
    Printf.printf "benchmark %s (%d sinks)\n" b.Suite.Format_io.name
      (Array.length b.Suite.Format_io.sinks);
    (match rr.Core.Flow.r_stitch with
    | None -> ()
    | Some st ->
      List.iter
        (fun (rg : Core.Flow.region_report) ->
          Printf.printf
            "region %-2d %6d sinks   skew %8.3f ps   evals %4d   %6.1f s\n"
            rg.Core.Flow.rg_index rg.Core.Flow.rg_sinks rg.Core.Flow.rg_skew
            rg.Core.Flow.rg_eval_runs rg.Core.Flow.rg_seconds)
        st.Core.Flow.st_regions;
      Printf.printf
        "stitch: predicted skew %.3f ps, %d polish rounds, max pad %.3f ps\n"
        st.Core.Flow.st_predicted_skew st.Core.Flow.st_rounds
        st.Core.Flow.st_max_pad_ps);
    List.iter
      (fun (e : Core.Flow.trace_entry) ->
        Printf.printf "%-8s skew %8.3f ps   CLR %8.3f ps   evals %4d   %6.1f s\n"
          (Core.Flow.step_name e.Core.Flow.step) e.Core.Flow.skew
          e.Core.Flow.clr e.Core.Flow.eval_runs e.Core.Flow.seconds)
      r.Core.Flow.trace;
    List.iter
      (fun (i : Core.Flow.incident) ->
        Printf.printf "incident %-8s attempt %d [%s] %s\n"
          (Core.Flow.step_name i.Core.Flow.inc_step) i.Core.Flow.inc_attempt
          i.Core.Flow.inc_action i.Core.Flow.inc_error)
      r.Core.Flow.incidents;
    let stats = r.Core.Flow.final.Ev.stats in
    Printf.printf "buffers %d  wirelength %.2f mm  cap %.1f pF (%s of limit)\n"
      stats.Ctree.Stats.buffer_count
      (float_of_int stats.Ctree.Stats.wirelength /. 1.e6)
      (stats.Ctree.Stats.total_cap /. 1000.)
      (if b.Suite.Format_io.tech.Tech.cap_limit = infinity then "n/a"
       else
         Printf.sprintf "%.1f%%"
           (100. *. stats.Ctree.Stats.total_cap
            /. b.Suite.Format_io.tech.Tech.cap_limit));
    (match r.Core.Flow.repair with
    | Some rep -> Format.printf "repair: %a@." Route.Repair.pp_report rep
    | None -> ());
    (* Local skew profile: skew restricted to communicating-distance
       sink pairs. *)
    let run_rise = Ev.nominal_run r.Core.Flow.final Ev.Rise in
    let profile =
      Analysis.Localskew.profile run_rise ~tree:r.Core.Flow.tree
        ~radii:[ 200_000; 1_000_000; 5_000_000 ]
    in
    Printf.printf "local skew: %s\n"
      (String.concat "  "
         (List.map
            (fun (radius, skew) ->
              Printf.sprintf "<=%.1fmm: %.3fps"
                (float_of_int radius /. 1.e6)
                skew)
            profile));
    (match r.Core.Flow.surrogate with
    | None -> ()
    | Some s ->
      Printf.printf
        "surrogate: %d observations, %d refits, rounds %d warm-up / %d \
         ranked, %d evals saved, %d mispredicts, %d fallbacks\n"
        s.Analysis.Surrogate.observations s.Analysis.Surrogate.refits
        s.Analysis.Surrogate.warmup_rounds s.Analysis.Surrogate.ranked_rounds
        s.Analysis.Surrogate.evals_saved s.Analysis.Surrogate.mispredicts
        s.Analysis.Surrogate.fallbacks);
    Option.iter (write_slack_svg r.Core.Flow.tree r.Core.Flow.final) svg
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the full Contango flow on a benchmark.")
    Term.(const run $ spec $ engine $ seg_len_arg $ second_pass_skew
          $ speculate_arg $ surrogate_arg $ rank_top_arg $ probe_count_arg
          $ size_probe_min_len_arg $ snake_probe_min_len_arg $ regions_arg
          $ regional_arg $ stitch_skew_arg $ checkpoints $ resume $ svg)

(* suite *)
let suite_cmd =
  let specs =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"SPEC"
             ~doc:"Instances to run: a .cts file, an ISPD'09 name, ti:<sinks>, \
                   grid:<n>, or the fault-injection specs fail:<name> and \
                   hang:<name>.")
  in
  let out_dir =
    Arg.(value & opt string "bench_out"
         & info [ "o"; "out-dir" ] ~docv:"DIR"
             ~doc:"Directory for suite.json and per-instance trace files.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-instance wall-clock budget; an instance past it is \
                   recorded as timed out.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Worker domains running instances in parallel (0 = \
                   sequential; default: one per spare core).")
  in
  let engine =
    Arg.(value & opt (some engine_conv) None
         & info [ "engine" ] ~doc:"Evaluation engine: spice (boxed reference), flat (streaming flat-arena kernel), arnoldi, elmore.")
  in
  let second_pass_skew =
    Arg.(value & opt (some float) None
         & info [ "second-pass-skew" ] ~docv:"PS"
             ~doc:"Nominal skew (ps) above which TWSZ/TWSN run a second pass.")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Golden suite.json to diff against; regressions beyond the \
                   tolerance fail the run.")
  in
  let tol_skew =
    Arg.(value & opt float Suite.Runner.default_tolerance.Suite.Runner.tol_skew_ps
         & info [ "tol-skew" ] ~docv:"PS"
             ~doc:"Skew regression tolerance for --baseline.")
  in
  let tol_clr =
    Arg.(value & opt float Suite.Runner.default_tolerance.Suite.Runner.tol_clr_ps
         & info [ "tol-clr" ] ~docv:"PS"
             ~doc:"CLR regression tolerance for --baseline.")
  in
  let checkpoints =
    Arg.(value & flag
         & info [ "checkpoints" ]
             ~doc:"Write verified per-stage checkpoints to \
                   <out-dir>/checkpoints/<name>/ for every instance \
                   (atomic, checksummed) so an interrupted suite can be \
                   resumed with --resume.")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"DIR"
             ~doc:"Resume each instance from its latest verified \
                   checkpoint under $(docv)/checkpoints, skipping \
                   completed stages (instances without checkpoints run \
                   from scratch), and keep checkpointing there.")
  in
  let run specs out_dir timeout jobs engine seg_len second_pass_skew
      speculation surrogate rank_top probe_count size_probe_min_len
      snake_probe_min_len regions regional stitch_skew baseline tol_skew
      tol_clr checkpoints resume =
    let specs = List.map Suite.Runner.spec_of_string specs in
    let config =
      config_of ?second_pass_skew ?speculation ~surrogate ?rank_top
        ?probe_count ?size_probe_min_len ?snake_probe_min_len ?seg_len
        ?regions ~regional ?stitch_skew ~engine ()
    in
    let checkpoints_root, resume_on =
      match resume with
      | Some dir -> (Some (Filename.concat dir "checkpoints"), true)
      | None ->
        ((if checkpoints then Some (Filename.concat out_dir "checkpoints")
          else None),
         false)
    in
    let result =
      Suite.Runner.run ~out_dir ?timeout ?jobs ~config
        ?checkpoints:checkpoints_root ~resume:resume_on specs
    in
    print_string (Suite.Runner.summary_table result);
    let path = Suite.Runner.write_suite_json result in
    Printf.printf "wrote %s\n" path;
    let regressions =
      match baseline with
      | None -> []
      | Some file -> (
        match Suite.Runner.load_baseline file with
        | Error msg ->
          Printf.eprintf "cannot read baseline %s: %s\n" file msg;
          exit 2
        | Ok golden ->
          let tolerance =
            { Suite.Runner.tol_skew_ps = tol_skew; tol_clr_ps = tol_clr }
          in
          Suite.Runner.diff_baseline ~tolerance ~golden result)
    in
    List.iter
      (fun r ->
        Printf.printf "REGRESSION %s: %s\n" r.Suite.Runner.reg_name
          r.Suite.Runner.what)
      regressions;
    print_endline (Suite.Runner.summary_line result);
    if Suite.Runner.failures result <> [] || regressions <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run a benchmark suite with fault isolation, per-step JSONL \
             telemetry and optional golden-baseline regression gating.")
    Term.(const run $ specs $ out_dir $ timeout $ jobs $ engine
          $ seg_len_arg $ second_pass_skew $ speculate_arg $ surrogate_arg
          $ rank_top_arg $ probe_count_arg $ size_probe_min_len_arg
          $ snake_probe_min_len_arg $ regions_arg $ regional_arg
          $ stitch_skew_arg $ baseline $ tol_skew $ tol_clr $ checkpoints
          $ resume)

(* pareto *)
let pareto_cmd =
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let out_dir =
    Arg.(value & opt string "bench_out"
         & info [ "o"; "out-dir" ] ~docv:"DIR"
             ~doc:"Directory for the <bench>.pareto.json report.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-point wall-clock budget; a point past it is recorded \
                   as failed.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Worker domains running sweep points in parallel (0 = \
                   sequential — the maximum cache-reuse setting; default: \
                   one per spare core).")
  in
  let engine =
    Arg.(value & opt (some engine_conv) None
         & info [ "engine" ] ~doc:"Evaluation engine: spice (boxed reference), flat (streaming flat-arena kernel), arnoldi, elmore.")
  in
  let run spec out_dir timeout jobs engine seg_len speculation surrogate
      rank_top =
    let b = load_bench spec in
    let config = config_of ?speculation ~surrogate ?rank_top ?seg_len ~engine () in
    let r = Suite.Pareto.run ?timeout ?jobs ~config b in
    print_string (Suite.Pareto.table r);
    let path = Suite.Pareto.write_json ~out_dir r in
    Printf.printf "wrote %s\n" path;
    let hits, misses = Suite.Pareto.store_totals r in
    Printf.printf
      "pareto: %d points in %.1f s — shared-store %d hits / %d misses \
       (%.0f%% reuse)\n"
      (List.length r.Suite.Pareto.pr_points)
      r.Suite.Pareto.pr_seconds hits misses
      (100. *. Suite.Pareto.hit_rate r);
    let failed =
      List.filter
        (fun p ->
          match p.Suite.Pareto.pt_outcome with
          | Error _ -> true
          | Ok _ -> false)
        r.Suite.Pareto.pr_points
    in
    if failed <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:"Sweep one benchmark over a grid of knob vectors (buffer \
             ladder, wire widths, snaking, transient mode, speculation \
             width), share stage-result stores across compatible points, \
             and report the skew/CLR/cap/runtime Pareto front.")
    Term.(const run $ spec $ out_dir $ timeout $ jobs $ engine $ seg_len_arg
          $ speculate_arg $ surrogate_arg $ rank_top_arg)

(* eval (baseline) *)
let eval_cmd =
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let engine =
    Arg.(value & opt (some engine_conv) None & info [ "engine" ])
  in
  let run spec engine =
    let b = load_bench spec in
    let config = config_of ~engine () in
    let r = Suite.Baseline.run ~config b in
    Format.printf "greedy-CTS baseline on %s: %a@." b.Suite.Format_io.name
      Ev.pp_summary r.Suite.Baseline.eval
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Run and evaluate the greedy-CTS baseline flow.")
    Term.(const run $ spec $ engine)

(* mc: Monte-Carlo variation analysis *)
let mc_cmd =
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let trials = Arg.(value & opt int 20 & info [ "trials" ] ~docv:"N") in
  let sigma =
    Arg.(value & opt float 0.05 & info [ "sigma" ]
         ~doc:"Relative std-dev of buffer drive strength.")
  in
  let run spec trials sigma =
    let b = load_bench spec in
    let r =
      Core.Flow.run ~tech:b.Suite.Format_io.tech
        ~source:b.Suite.Format_io.source
        ~obstacles:b.Suite.Format_io.obstacles b.Suite.Format_io.sinks
    in
    let mc =
      Analysis.Montecarlo.run
        { Analysis.Montecarlo.default_spec with
          Analysis.Montecarlo.trials; sigma_buffer = sigma }
        r.Core.Flow.tree
    in
    Printf.printf
      "%s after the full flow, %d trials at sigma %.0f%%:\n\
       nominal skew %.3f ps; under variation mean %.3f, worst %.3f, \
       sigma %.3f ps\n"
      b.Suite.Format_io.name trials (100. *. sigma)
      mc.Analysis.Montecarlo.nominal_skew mc.Analysis.Montecarlo.mean_skew
      mc.Analysis.Montecarlo.max_skew mc.Analysis.Montecarlo.std_skew
  in
  Cmd.v
    (Cmd.info "mc" ~doc:"Monte-Carlo variation analysis of the optimized tree.")
    Term.(const run $ spec $ trials $ sigma)

(* mesh: tree-mesh hybrid *)
let mesh_cmd =
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let density = Arg.(value & opt int 12 & info [ "density" ] ~docv:"N") in
  let taps = Arg.(value & opt int 4 & info [ "taps" ] ~docv:"K") in
  let run spec density taps =
    let b = load_bench spec in
    let region = b.Suite.Format_io.chip in
    let sinks =
      Array.map
        (fun s -> (s.Dme.Zst.pos, s.Dme.Zst.cap))
        b.Suite.Format_io.sinks
    in
    let m =
      Mesh.Grid_mesh.build ~tech:b.Suite.Format_io.tech ~region ~nx:density
        ~ny:density ~sinks
    in
    let res, flow =
      Mesh.Grid_mesh.hybrid ~tech:b.Suite.Format_io.tech
        ~source:b.Suite.Format_io.source ~k:taps m
    in
    Printf.printf
      "%dx%d mesh, %dx%d taps on %s:\n\
       tap-tree skew %.3f ps; mesh sink skew %.3f ps; worst sink slew %.1f \
       ps; mesh wire cap %.1f pF\n"
      density density taps taps b.Suite.Format_io.name
      flow.Core.Flow.final.Ev.skew res.Mesh.Grid_mesh.skew
      res.Mesh.Grid_mesh.worst_slew
      (Mesh.Grid_mesh.wire_cap m /. 1000.)
  in
  Cmd.v
    (Cmd.info "mesh" ~doc:"Drive a clock mesh from a Contango tap tree.")
    Term.(const run $ spec $ density $ taps)

(* netlist *)
let netlist_cmd =
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let output =
    Arg.(value & opt string "tree.cir" & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run spec output =
    let b = load_bench spec in
    let tree, _, _, _ =
      Core.Flow.initial_tree ~tech:b.Suite.Format_io.tech
        ~source:b.Suite.Format_io.source
        ~obstacles:b.Suite.Format_io.obstacles b.Suite.Format_io.sinks
    in
    Analysis.Netlist.write_file output tree;
    Printf.printf "wrote %s (ngspice deck for the initial buffered tree)\n"
      output
  in
  Cmd.v
    (Cmd.info "netlist"
       ~doc:"Export the initial buffered tree as an ngspice deck.")
    Term.(const run $ spec $ output)

(* svg *)
let svg_cmd =
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let output =
    Arg.(value & opt string "tree.svg" & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run spec output =
    let b = load_bench spec in
    let tree, _, _, _ =
      Core.Flow.initial_tree ~tech:b.Suite.Format_io.tech
        ~source:b.Suite.Format_io.source
        ~obstacles:b.Suite.Format_io.obstacles b.Suite.Format_io.sinks
    in
    let eval = Ev.evaluate tree in
    let slacks = Core.Slack.combined tree eval in
    let hi =
      Array.fold_left
        (fun acc v -> if Float.is_finite v then Float.max acc v else acc)
        0. slacks.Core.Slack.slow
    in
    let edge_color id =
      Ctree.Svg.gradient ~lo:0. ~hi slacks.Core.Slack.slow.(id)
    in
    Ctree.Svg.write_file output
      (Ctree.Svg.render ~edge_color ~obstacles:b.Suite.Format_io.obstacles tree);
    Printf.printf "wrote %s\n" output
  in
  Cmd.v
    (Cmd.info "svg"
       ~doc:"Render the initial buffered tree with slack colouring.")
    Term.(const run $ spec $ output)

(* serve / client *)
let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path. Exactly one of $(b,--socket) and \
                 $(b,--port) must be given.")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port on 127.0.0.1 (0 picks an ephemeral port; the \
                 server prints the one bound).")

let sockaddr_of socket port =
  match (socket, port) with
  | Some path, None -> Unix.ADDR_UNIX path
  | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
  | Some _, Some _ ->
    Printf.eprintf "contango: --socket and --port are mutually exclusive\n";
    exit 2
  | None, None ->
    Printf.eprintf "contango: one of --socket or --port is required\n";
    exit 2

let sockaddr_string = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (host, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port

let serve_cmd =
  let max_queue =
    Arg.(value & opt int 16
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Bound on queued-plus-running requests; requests beyond it \
                   are rejected with a busy/retry-after response instead of \
                   being enqueued.")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains for request execution (0 = inline on \
                   connection threads; default: one per spare core).")
  in
  let engine =
    Arg.(value & opt (some engine_conv) None
         & info [ "engine" ] ~doc:"Evaluation engine: spice (boxed reference), flat (streaming flat-arena kernel), arnoldi, elmore.")
  in
  let conn_timeout =
    Arg.(value & opt (some float) None
         & info [ "conn-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection read deadline: a connection idle (or \
                   stuck mid-frame) for longer is closed. Default: no \
                   deadline.")
  in
  let max_conns =
    Arg.(value & opt int 0
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Cap on concurrent connections; at the cap the oldest \
                   idle connection is evicted (or, when every connection \
                   is mid-request, the new one is rejected busy). 0 = \
                   unbounded.")
  in
  let chaos =
    Arg.(value & opt (some string) None
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Seeded fault-injection spec, e.g. \
                   $(b,seed=7,drop_pre=0.1,frame_garbage=0.05\\@3,job_crash=0.02). \
                   Faults fire deterministically from the seed and are \
                   counted in the stats op.")
  in
  let checkpoints =
    Arg.(value & opt (some string) None
         & info [ "checkpoints" ] ~docv:"DIR"
             ~doc:"Write verified per-stage checkpoints for every run \
                   request under $(docv)/<spec>/.")
  in
  let run socket port max_queue workers conn_timeout_s max_conns chaos
      checkpoints engine seg_len speculation regions regional stitch_skew =
    let config =
      config_of ?speculation ?seg_len ?regions ~regional ?stitch_skew ~engine
        ()
    in
    let config = { config with Core.Config.chaos } in
    let server =
      try
        Serve.Server.create ~config ~max_queue ?workers ?conn_timeout_s
          ~max_conns ?checkpoints (sockaddr_of socket port)
      with Invalid_argument msg ->
        Printf.eprintf "contango: %s\n" msg;
        exit 2
    in
    Printf.printf "contango serve: listening on %s (max-queue %d%s)\n%!"
      (sockaddr_string (Serve.Server.sockaddr server))
      max_queue
      (if Serve.Chaos.is_active (Serve.Server.chaos server) then ", chaos on"
       else "");
    Serve.Server.serve server;
    print_endline "contango serve: shut down cleanly"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the long-lived daemon: concurrent synthesis/evaluation \
             requests over a Unix/TCP socket, with cross-request cache \
             reuse, bounded-queue backpressure, per-request deadlines, \
             connection lifecycle hardening and optional seeded fault \
             injection.")
    Term.(const run $ socket_arg $ port_arg $ max_queue $ workers
          $ conn_timeout $ max_conns $ chaos $ checkpoints $ engine
          $ seg_len_arg $ speculate_arg $ regions_arg $ regional_arg
          $ stitch_skew_arg)

let client_cmd =
  let op =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OP"
             ~doc:"One of run, eval, sleep, stats, ping, shutdown.")
  in
  let arg =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"ARG"
             ~doc:"Benchmark spec for run/eval (e.g. ti:200, grid:4, a .cts \
                   file); seconds for sleep.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request budget, measured from admission (queue wait \
                   counts). The server answers a structured deadline error \
                   once it passes.")
  in
  let request_key =
    Arg.(value & opt (some string) None
         & info [ "request-key" ] ~docv:"KEY"
             ~doc:"Idempotency key for run/eval: the daemon answers a \
                   repeated key from its cache instead of recomputing. \
                   With $(b,--retries), one is generated automatically.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry the request up to $(docv) extra times with \
                   jittered exponential backoff, honouring the daemon's \
                   retry-after hint on busy. Run/eval retries reuse one \
                   idempotency key, so the work happens at most once.")
  in
  let run socket port op arg timeout_s request_key retries =
    let addr = sockaddr_of socket port in
    let needs_spec what =
      match arg with
      | Some s -> s
      | None ->
        Printf.eprintf "contango: client %s needs a benchmark spec\n" what;
        exit 2
    in
    let request =
      match op with
      | "run" ->
        Serve.Protocol.Run
          { spec = needs_spec "run"; timeout_s; request_key }
      | "eval" ->
        Serve.Protocol.Eval
          { spec = needs_spec "eval"; timeout_s; request_key }
      | "sleep" ->
        let seconds =
          match Option.bind arg float_of_string_opt with
          | Some s -> s
          | None ->
            Printf.eprintf "contango: client sleep needs a seconds number\n";
            exit 2
        in
        Serve.Protocol.Sleep { seconds; timeout_s }
      | "stats" -> Serve.Protocol.Stats
      | "ping" -> Serve.Protocol.Ping
      | "shutdown" -> Serve.Protocol.Shutdown
      | other ->
        Printf.eprintf "contango: unknown client op %S\n" other;
        exit 2
    in
    let exchange addr req =
      if retries > 0 then Serve.Client.request_with_retry ~retries addr req
      else Serve.Client.oneshot addr req
    in
    match exchange addr request with
    | exception Unix.Unix_error (e, _, _)
      when request = Serve.Protocol.Shutdown
           && (e = Unix.ENOENT || e = Unix.ECONNREFUSED) ->
      (* Stopping a daemon that is not running is the requested end
         state. This also covers a retried shutdown whose first answer
         was lost: the daemon honoured the request, unlinked its socket
         and the retry finds nothing to talk to. *)
      print_endline
        (Suite.Report.Json.to_compact_string
           (Serve.Protocol.encode_response
              (Serve.Protocol.Completed
                 { op = "shutdown"; body = Serve.Protocol.Json.Null })))
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "contango: cannot reach %s: %s\n" (sockaddr_string addr)
        (Unix.error_message e);
      exit 2
    | Error msg ->
      Printf.eprintf "contango: bad response: %s\n" msg;
      exit 2
    | Ok response ->
      (* One compact JSON line — scripts grep or pipe it. Exit code says
         which way it went: 0 ok, 75 (EX_TEMPFAIL) busy, 1 error. *)
      print_endline
        (Suite.Report.Json.to_compact_string
           (Serve.Protocol.encode_response response));
      (match response with
      | Serve.Protocol.Completed _ -> ()
      | Serve.Protocol.Busy _ -> exit 75
      | Serve.Protocol.Failed _ -> exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running contango serve daemon and print \
             the JSON response.")
    Term.(const run $ socket_arg $ port_arg $ op $ arg $ timeout
          $ request_key $ retries)

let () =
  let info =
    Cmd.info "contango" ~version:"1.0.0"
      ~doc:"Integrated optimization of SoC clock networks (DATE'10 reproduction)."
  in
  exit (Cmd.eval (Cmd.group info
       [ generate_cmd; run_cmd; suite_cmd; pareto_cmd; eval_cmd; svg_cmd;
         netlist_cmd; mc_cmd; mesh_cmd; serve_cmd; client_cmd ]))
