(* Bounded-skew construction (paper §II background): the BST/DME family
   trades a skew budget for wirelength. Plain ZST mode snakes the fast
   branch of every unbalanced merge; with a budget, imbalances within it
   are absorbed instead.

     dune exec examples/bst_tradeoff.exe
*)

open Geometry

let tech = Tech.default45 ()

(* Part 1 — the mechanism on a single merge: a slow two-sink subtree (its
   internal wire carries real Elmore delay) merged with a sink right next
   to its tapping region. Zero-skew mode must elongate the fast sink's
   wire; a budget absorbs the gap instead. *)
let mechanism () =
  print_endline "One unbalanced merge (fast-edge electrical length, nm):";
  let positions =
    [| Point.make 0 0; Point.make 2_000_000 0; Point.make 1_000_000 10_000 |]
  in
  let caps = [| 10.; 10.; 10. |] in
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let topo =
    Dme.Topology.Node
      (Dme.Topology.Node (Dme.Topology.Leaf 0, Dme.Topology.Leaf 1),
       Dme.Topology.Leaf 2)
  in
  List.iter
    (fun budget ->
      let m = Dme.Merge.bottom_up ~skew_budget:budget topo ~positions ~caps ~wire in
      match m.Dme.Merge.shape with
      | Dme.Merge.Mnode (_, _, _, eb) ->
        Printf.printf
          "  budget %6.1f ps -> edge %7.0f nm (geometric distance 10000), \
           spread %.2f ps\n"
          budget eb
          (m.Dme.Merge.delay -. m.Dme.Merge.delay_min)
      | Dme.Merge.Mleaf _ -> ())
    [ 0.; 2.; 10. ]

(* Part 2 — whole-tree statistics on a random instance whose topology
   happens to need snaking. *)
let whole_tree () =
  print_endline "\nWhole-tree construction (200 random sinks, 5 mm die):";
  let rng = Suite.Rng.create 11 in
  let sinks =
    Array.init 200 (fun i ->
        { Dme.Zst.pos =
            Point.make (Suite.Rng.int rng 5_000_000) (Suite.Rng.int rng 5_000_000);
          cap = 10. +. Suite.Rng.float rng *. 20.; parity = 0;
          label = Printf.sprintf "s%d" i })
  in
  Printf.printf "%10s %14s %12s %14s\n" "budget(ps)" "wirelength(mm)"
    "snake(mm)" "elmore skew";
  List.iter
    (fun budget ->
      let t =
        Dme.Zst.build ~tech ~source:(Point.make 0 2_500_000)
          ~skew_budget:budget sinks
      in
      let s = Ctree.Stats.compute t in
      let skew =
        (Analysis.Evaluator.evaluate ~engine:Analysis.Evaluator.Elmore_model t)
          .Analysis.Evaluator.skew
      in
      Printf.printf "%10.1f %14.2f %12.3f %12.2fps\n" budget
        (float_of_int s.Ctree.Stats.wirelength /. 1.e6)
        (float_of_int s.Ctree.Stats.snake_total /. 1.e6)
        skew)
    [ 0.; 2.; 10.; 50. ]

let () =
  mechanism ();
  whole_tree ();
  print_endline
    "\nBalanced topologies rarely need much construction snaking, so the\n\
     budget's wirelength saving is modest there — but each unbalanced\n\
     merge it does hit avoids an elongation entirely, and the admitted\n\
     construction skew is later recovered by the flow's accurate\n\
     optimizations."
