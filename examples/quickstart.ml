(* Quickstart: synthesise a clock tree for a handful of sinks and print
   what the flow did.

     dune exec examples/quickstart.exe
*)

open Geometry

let () =
  (* A 4 mm x 4 mm die with 40 clock sinks in two clusters. *)
  let rng = Suite.Rng.create 42 in
  let cluster cx cy n =
    List.init n (fun i ->
        let x = cx + Suite.Rng.int rng 800_000 - 400_000 in
        let y = cy + Suite.Rng.int rng 800_000 - 400_000 in
        { Dme.Zst.label = Printf.sprintf "ff%d_%d" cx i;
          pos = Point.make (abs x) (abs y); cap = 10.; parity = 0 })
  in
  let sinks =
    Array.of_list (cluster 1_000_000 3_000_000 20 @ cluster 3_000_000 1_000_000 20)
  in
  let tech = Tech.default45 ~cap_limit:30_000. () in
  let result =
    Core.Flow.run ~tech ~source:(Point.make 0 2_000_000) sinks
  in
  print_endline "step      skew(ps)   CLR(ps)";
  List.iter
    (fun (e : Core.Flow.trace_entry) ->
      Printf.printf "%-8s %8.3f  %8.3f\n"
        (Core.Flow.step_name e.Core.Flow.step)
        e.Core.Flow.skew e.Core.Flow.clr)
    result.Core.Flow.trace;
  let stats = result.Core.Flow.final.Analysis.Evaluator.stats in
  Printf.printf
    "\n%d buffers (%s), %.2f mm of wire, %.1f pF total capacitance\n"
    stats.Ctree.Stats.buffer_count
    (Tech.Composite.name result.Core.Flow.chosen_buf)
    (float_of_int stats.Ctree.Stats.wirelength /. 1.e6)
    (stats.Ctree.Stats.total_cap /. 1000.);
  Printf.printf "evaluation (SPICE-substitute) runs: %d in %.1f s\n"
    result.Core.Flow.eval_runs result.Core.Flow.seconds
