(* Tree–mesh hybrid (the paper's conclusion: Contango trees "can be
   integrated with meshes, as is common in modern CPU design" — and
   better trees allow using smaller meshes).

   The mesh's resistive loops average the arrival times its drive taps
   deliver, trading wire capacitance (power) for tolerance to tree skew.
   This demo drives meshes of growing density (a) from a Contango tree
   and (b) from deliberately mis-aligned taps, showing how much tree
   error each mesh density absorbs.

     dune exec examples/mesh_hybrid.exe
*)

open Geometry

let () =
  let tech = Tech.default45 () in
  let rng = Suite.Rng.create 3 in
  let sinks =
    Array.init 150 (fun _ ->
        ( Point.make (Suite.Rng.int rng 3_000_000) (Suite.Rng.int rng 3_000_000),
          8. +. Suite.Rng.float rng *. 10. ))
  in
  let region = Rect.make ~lx:0 ~ly:0 ~hx:3_000_000 ~hy:3_000_000 in

  print_endline "Contango tree driving the mesh (k x k taps):";
  Printf.printf "%6s %6s %12s %12s %10s\n" "mesh" "taps" "tree skew" "mesh skew"
    "mesh cap";
  List.iter
    (fun (nx, k) ->
      let m = Mesh.Grid_mesh.build ~tech ~region ~nx ~ny:nx ~sinks in
      let res, flow =
        Mesh.Grid_mesh.hybrid ~tech ~source:(Point.make 0 1_500_000) ~k m
      in
      Printf.printf "%3dx%-3d %3dx%-3d %10.2fps %10.2fps %8.1fpF\n%!" nx nx k k
        flow.Core.Flow.final.Analysis.Evaluator.skew res.Mesh.Grid_mesh.skew
        (Mesh.Grid_mesh.wire_cap m /. 1000.))
    [ (8, 3); (12, 4); (16, 4) ];

  (* How much tree error does each mesh density absorb? Drive the taps
     with arrivals spread uniformly over 60 ps — a deliberately bad
     tree. *)
  print_endline
    "\nMesh as an equaliser: taps mis-aligned across 60 ps (a bad tree):";
  Printf.printf "%6s %12s %14s\n" "mesh" "mesh skew" "absorption";
  List.iter
    (fun nx ->
      let m = Mesh.Grid_mesh.build ~tech ~region ~nx ~ny:nx ~sinks in
      let tap_rng = Suite.Rng.create 17 in
      let taps =
        Array.to_list (Mesh.Grid_mesh.tap_points m ~k:4)
        |> List.map (fun pos ->
               { Mesh.Grid_mesh.pos;
                 arrival = 300. +. Suite.Rng.float tap_rng *. 60.;
                 r_drv = 14.; ramp = 30. })
      in
      let res = Mesh.Grid_mesh.evaluate m ~taps () in
      Printf.printf "%3dx%-3d %10.2fps %12.0f%%\n%!" nx nx
        res.Mesh.Grid_mesh.skew
        (100. *. (1. -. (res.Mesh.Grid_mesh.skew /. 60.))))
    [ 6; 10; 16 ];
  print_endline
    "\nDenser meshes absorb more tree error but cost more capacitance —\n\
     which is exactly why a better tree (Contango's point) lets a design\n\
     use a smaller, cheaper mesh."
