(* Sink-polarity correction strategies compared (paper §IV-D, Table II):
   after polarity-oblivious buffer insertion roughly half the sinks see an
   inverted clock. The naive patch, the top-inverter variant and the
   minimal bottom-up marking algorithm (Proposition 2) fix the same tree
   at very different cost.

     dune exec examples/polarity_demo.exe
*)

open Geometry

let build_inserted () =
  let rng = Suite.Rng.create 99 in
  let sinks =
    Array.init 200 (fun i ->
        { Dme.Zst.label = Printf.sprintf "s%d" i;
          pos = Point.make (Suite.Rng.int rng 6_000_000) (Suite.Rng.int rng 6_000_000);
          cap = 10.; parity = 0 })
  in
  let tech = Tech.default45 () in
  let tree = Dme.Zst.build ~tech ~source:(Point.make 0 3_000_000) sinks in
  let buf = Tech.Composite.make Tech.Device.small_inverter 16 in
  let ceiling = Route.Slewcap.lumped ~tech ~buf () in
  (Buffering.Fast_vg.insert tree ~buf ~cap_ceiling:ceiling (), buf)

let () =
  let strategies =
    [ ("per-sink", Core.Polarity.Per_sink);
      ("top+per-sink", Core.Polarity.Top_then_per_sink);
      ("minimal (Prop. 2)", Core.Polarity.Minimal) ]
  in
  Printf.printf "%-18s %14s %14s %12s\n" "strategy" "inverted sinks"
    "added inverters" "skew (ps)";
  List.iter
    (fun (name, strategy) ->
      let tree, buf = build_inserted () in
      let report = Core.Polarity.correct tree ~buf ~strategy in
      assert (Core.Polarity.inverted_sinks tree = []);
      let eval =
        Analysis.Evaluator.evaluate ~engine:Analysis.Evaluator.Arnoldi tree
      in
      Printf.printf "%-18s %14d %14d %12.2f\n" name
        report.Core.Polarity.inverted_before report.Core.Polarity.added
        eval.Analysis.Evaluator.skew)
    strategies;
  print_endline
    "\nAll three agree on correctness; Minimal adds the fewest inverters\n\
     (<= 1 per root-to-sink path), and the skew it introduces is repaired\n\
     by the downstream optimizations of the full flow."
