(* Obstacle-heavy SoC: pre-placed macros block buffer insertion, so the
   flow must detour subtrees along obstacle contours (paper §IV-A,
   Fig. 2). Demonstrates compound-obstacle handling and renders the
   resulting tree to an SVG.

     dune exec examples/soc_obstacles.exe
*)

open Geometry

let () =
  (* An 8 mm x 6 mm SoC with a CPU block, an L-shaped RAM compound (two
     abutting rectangles) and a DSP strip. *)
  let obstacles =
    [
      Rect.make ~lx:1_500_000 ~ly:1_500_000 ~hx:3_800_000 ~hy:3_600_000;
      (* RAM compound: two abutting rectangles forming an L *)
      Rect.make ~lx:4_800_000 ~ly:2_000_000 ~hx:6_400_000 ~hy:4_400_000;
      Rect.make ~lx:6_400_000 ~ly:2_000_000 ~hx:7_200_000 ~hy:3_000_000;
      (* DSP strip near the top *)
      Rect.make ~lx:2_500_000 ~ly:4_800_000 ~hx:6_000_000 ~hy:5_400_000;
    ]
  in
  let rng = Suite.Rng.create 7 in
  let inside p = List.exists (fun r -> Rect.contains_open r p) obstacles in
  let rec place () =
    let p = Point.make (Suite.Rng.int rng 8_000_000) (Suite.Rng.int rng 6_000_000) in
    if inside p then place () else p
  in
  let sinks =
    Array.init 150 (fun i ->
        { Dme.Zst.label = Printf.sprintf "s%d" i; pos = place ();
          cap = 8. +. Suite.Rng.float rng *. 20.; parity = 0 })
  in
  let tech = Tech.default45 ~cap_limit:80_000. () in
  let source = Point.make 0 3_000_000 in

  (* How bad is it without repair? Count wire-over-macro overlap. *)
  let raw = Dme.Zst.build ~tech ~source sinks in
  let compounds = Route.Obstacle.compounds obstacles in
  Printf.printf "compound obstacles: %d (from %d rectangles)\n"
    (List.length compounds) (List.length obstacles);

  let strongest = Tech.Composite.make Tech.Device.small_inverter 32 in
  let drivable = Route.Slewcap.lumped ~tech ~buf:strongest () in
  let _, report = Route.Repair.run raw ~obstacles ~drivable_cap:drivable in
  Format.printf "repair on the raw ZST: %a@." Route.Repair.pp_report report;

  (* Full flow with obstacles. *)
  let result = Core.Flow.run ~tech ~source ~obstacles sinks in
  List.iter
    (fun (e : Core.Flow.trace_entry) ->
      Printf.printf "%-8s skew %8.3f ps   CLR %8.3f ps\n"
        (Core.Flow.step_name e.Core.Flow.step)
        e.Core.Flow.skew e.Core.Flow.clr)
    result.Core.Flow.trace;
  (match result.Core.Flow.repair with
  | Some r -> Format.printf "flow repair: %a@." Route.Repair.pp_report r
  | None -> ());

  (* Render with slow-down-slack colouring, Fig. 3 style. *)
  let tree = result.Core.Flow.tree in
  let slacks = Core.Slack.combined tree result.Core.Flow.final in
  let hi =
    Array.fold_left
      (fun acc v -> if Float.is_finite v then Float.max acc v else acc)
      0. slacks.Core.Slack.slow
  in
  let edge_color id = Ctree.Svg.gradient ~lo:0. ~hi slacks.Core.Slack.slow.(id) in
  let path = "soc_obstacles.svg" in
  Ctree.Svg.write_file path (Ctree.Svg.render ~edge_color ~obstacles tree);
  Printf.printf "wrote %s\n" path
