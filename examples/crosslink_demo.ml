(* Cross-links (paper conclusions): prior work inserts non-tree links
   between sinks to average variation-induced arrival differences; the
   paper argues a well-tuned tree leaves little for a link to recover.
   This demo measures the link gain on a Contango-optimized tree versus a
   deliberately unoptimized one.

     dune exec examples/crosslink_demo.exe
*)

open Geometry
module Ev = Analysis.Evaluator

let () =
  let rng = Suite.Rng.create 21 in
  let sinks =
    Array.init 60 (fun i ->
        { Dme.Zst.pos =
            Point.make (Suite.Rng.int rng 3_000_000) (Suite.Rng.int rng 3_000_000);
          cap = 10. +. Suite.Rng.float rng *. 10.; parity = 0;
          label = Printf.sprintf "s%d" i })
  in
  let tech = Tech.default45 () in
  let source = Point.make 0 1_500_000 in

  let measure label tree =
    let eval = Ev.evaluate tree in
    let pairs = Mesh.Crosslink.candidates tree ~radius:600_000 ~limit:3 () in
    Printf.printf "%s (nominal skew %.2f ps):\n" label eval.Ev.skew;
    List.iter
      (fun (a, b) ->
        let r = Mesh.Crosslink.evaluate tree ~eval ~pair:(a, b) ~sigma:5. () in
        Printf.printf
          "  link %s--%s: divergence %6.2f ps -> %6.2f ps with link \
           (gain %5.1f%%, cost %.0f fF)\n"
          (match (Ctree.Tree.node tree a).Ctree.Tree.kind with
           | Ctree.Tree.Sink s -> s.Ctree.Tree.label | _ -> "?")
          (match (Ctree.Tree.node tree b).Ctree.Tree.kind with
           | Ctree.Tree.Sink s -> s.Ctree.Tree.label | _ -> "?")
          r.Mesh.Crosslink.unlinked r.Mesh.Crosslink.linked
          (100. *. (1. -. (r.Mesh.Crosslink.linked /. Float.max 1e-9 r.Mesh.Crosslink.unlinked)))
          r.Mesh.Crosslink.link_cap)
      pairs
  in

  (* Optimized Contango tree. *)
  let flow = Core.Flow.run ~tech ~source sinks in
  measure "Contango tree" flow.Core.Flow.tree;

  (* Unoptimized: initial buffered tree without stage balance or any
     optimization. *)
  let cfg =
    { Core.Config.default with
      Core.Config.stage_balancing = false; elmore_prebalance = false }
  in
  let raw, _, _, _ = Core.Flow.initial_tree ~config:cfg ~tech ~source sinks in
  measure "unoptimized tree" raw;

  print_endline
    "\nLinks average out a local pair's variation on either tree - but they\n\
     cannot repair the unoptimized tree's global skew, and on the sub-ps\n\
     Contango tree they only buy insurance against variation, at a\n\
     capacitance cost per pair. Strengthening buffers (Contango's route)\n\
     provides much of that insurance tree-wide: the paper's conclusion\n\
     that strong trees make cross-links hard to justify."
