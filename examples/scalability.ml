(* Scalability demo (paper §V, Table V, reduced): run the flow on
   TI-style benchmarks of growing size with the moment-matching (Arnoldi)
   engine and watch capacitance scale linearly while skew stays small.

     dune exec examples/scalability.exe            (200..2000 sinks)
     CONTANGO_EXAMPLE_FULL=1 dune exec examples/scalability.exe   (..10K)
*)

let () =
  let sizes =
    match Sys.getenv_opt "CONTANGO_EXAMPLE_FULL" with
    | Some _ -> [ 200; 500; 1_000; 2_000; 5_000; 10_000 ]
    | None -> [ 200; 500; 1_000; 2_000 ]
  in
  let config = Core.Config.scalability in
  Printf.printf "%6s %10s %10s %12s %10s %8s %6s\n" "sinks" "CLR(ps)"
    "skew(ps)" "latency(ps)" "cap(pF)" "time(s)" "evals";
  List.iter
    (fun n ->
      let b = Suite.Gen_ti.generate n in
      let r =
        Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
          ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
      in
      let final = r.Core.Flow.final in
      let stats = final.Analysis.Evaluator.stats in
      Printf.printf "%6d %10.2f %10.3f %12.1f %10.1f %8.1f %6d\n%!" n
        final.Analysis.Evaluator.clr final.Analysis.Evaluator.skew
        final.Analysis.Evaluator.t_max
        (stats.Ctree.Stats.total_cap /. 1000.)
        r.Core.Flow.seconds r.Core.Flow.eval_runs)
    sizes
